package serve

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// replayGoldenTrace runs the same pinned scenario as goldenTrace with
// the replay payload enabled.
func replayGoldenTrace(t *testing.T) []byte {
	t.Helper()
	return goldenScenario(t, true)
}

// TestReplayTraceGolden pins the byte-exact replay-enriched decision
// trace of the golden scenario (stored gzipped — the payload carries
// full feature vectors — and compared decompressed, so the pin is on
// the trace bytes, not on gzip's output). Together with
// TestDecisionTraceGolden it is the compatibility proof for the replay
// payload: with the flag on, the enriched bytes are stable; with the
// flag off, the trace is byte-identical to the pre-replay format.
func TestReplayTraceGolden(t *testing.T) {
	got := replayGoldenTrace(t)
	path := filepath.Join("testdata", "decision_trace_replay.golden.jsonl.gz")
	if *updateGolden {
		var buf bytes.Buffer
		zw, err := gzip.NewWriterLevel(&buf, gzip.BestCompression)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := zw.Write(got); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %d bytes (%d compressed)", len(got), buf.Len())
		return
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("read golden (run with -update_golden to create): %v", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	want, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		gotLines := bytes.Split(got, []byte("\n"))
		wantLines := bytes.Split(want, []byte("\n"))
		for i := range gotLines {
			if i >= len(wantLines) || !bytes.Equal(gotLines[i], wantLines[i]) {
				t.Fatalf("replay trace diverges from golden at line %d (got %d bytes, want %d)",
					i+1, len(gotLines[i]), len(wantLines[min(i, len(wantLines)-1)]))
			}
		}
		t.Fatalf("replay trace diverges from golden: got %d bytes, want %d", len(got), len(want))
	}
}

// TestReplayTraceIsSuperset proves the payload is purely additive: the
// replay-enriched trace with each line's trailing "replay" object
// stripped equals the payload-off trace byte for byte. The scheduler's
// decisions — and every other serialized field — are unaffected by
// turning capture on.
func TestReplayTraceIsSuperset(t *testing.T) {
	enriched := replayGoldenTrace(t)
	plain := goldenTrace(t)

	var stripped bytes.Buffer
	marker := []byte(`,"replay":`)
	for _, line := range bytes.Split(enriched, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		if i := bytes.Index(line, marker); i >= 0 {
			// Replay is the last field: drop it and close the object.
			stripped.Write(line[:i])
			stripped.WriteByte('}')
		} else {
			stripped.Write(line)
		}
		stripped.WriteByte('\n')
	}
	if !bytes.Equal(stripped.Bytes(), plain) {
		t.Fatal("stripping the replay payload does not recover the payload-off trace — capture perturbed a decision")
	}
}
