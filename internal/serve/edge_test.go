package serve

import (
	"strings"
	"testing"
)

func TestSubmitAfterDrainRejected(t *testing.T) {
	s := setup(t)
	srv, err := New(Options{Models: s.Models})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(StreamConfig{Video: video(1, 20), SLO: 50}); err != nil {
		t.Fatal(err)
	}
	r := srv.Drain()
	if len(r.Streams) != 1 {
		t.Fatalf("streams = %d", len(r.Streams))
	}
	clones := srv.Clones()
	if _, err := srv.Submit(StreamConfig{Video: video(2, 20), SLO: 50}); err == nil {
		t.Fatal("post-drain submit must error")
	} else if !strings.Contains(err.Error(), "draining") {
		t.Fatalf("unexpected error: %v", err)
	}
	if srv.Clones() != clones {
		t.Fatal("post-drain submit paid for a models clone")
	}
	// The report is unchanged by the refused submission.
	if r2 := srv.Drain(); len(r2.Streams) != 1 {
		t.Fatalf("report changed after refused submit: %d streams", len(r2.Streams))
	}
}

func TestDrainWithZeroStreams(t *testing.T) {
	s := setup(t)
	srv, err := New(Options{Models: s.Models})
	if err != nil {
		t.Fatal(err)
	}
	r := srv.Drain()
	if r == nil {
		t.Fatal("nil report")
	}
	if len(r.Streams) != 0 || r.Rounds != 0 || r.AttainRate != 0 {
		t.Fatalf("empty drain report wrong: %+v", r)
	}
	if sum := r.Summary(); sum == "" {
		t.Fatal("empty drain must still render a summary")
	}
}

func TestContentionTraceExhaustedMidRun(t *testing.T) {
	s := setup(t)
	// A 5-frame trace against a 60-frame video: once exhausted, the
	// floor must hold the trace's last level, not collapse to zero.
	const held = 0.6
	run := func(trace []float64, floor float64) *StreamResult {
		srv, err := New(Options{Models: s.Models, Coupling: -1})
		if err != nil {
			t.Fatal(err)
		}
		h, err := srv.Submit(StreamConfig{
			Video: video(9, 60), SLO: 50, Seed: 7,
			ContentionTrace: trace, BaseContention: floor,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Drain()
		return h.Result()
	}
	traced := run([]float64{0.1, 0.2, 0.3, 0.4, held}, 0)
	fixed := run(nil, held)
	if traced.MeanContention <= 0 {
		t.Fatal("trace floor never applied")
	}
	// Almost every frame runs past the 5-frame trace, so the stream's
	// mean applied contention approaches the held level (sampled at
	// round barriers; allow slack for the early low-level frames).
	if diff := fixed.MeanContention - traced.MeanContention; diff < 0 || diff > 0.2 {
		t.Fatalf("exhausted trace did not hold last level: traced=%.2f fixed=%.2f",
			traced.MeanContention, fixed.MeanContention)
	}
}
