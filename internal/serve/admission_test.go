package serve

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"litereconfig/internal/metric"
	"litereconfig/internal/vid"
)

// deriveClass must keep fractional SLOs apart: under the old "%.0f"
// format both 33.3 and 33.4 collapsed into "slo33ms" and their class
// stats were silently merged.
func TestDeriveClassFractionalSLOs(t *testing.T) {
	cases := map[float64]string{
		33.3: "slo33.3ms",
		33.4: "slo33.4ms",
		50:   "slo50ms",
		100:  "slo100ms",
	}
	for slo, want := range cases {
		if got := deriveClass(slo); got != want {
			t.Errorf("deriveClass(%v) = %q, want %q", slo, got, want)
		}
	}
	if deriveClass(33.3) == deriveClass(33.4) {
		t.Fatal("fractional SLOs 33.3 and 33.4 must derive distinct classes")
	}
}

// A rejected submission must carry the typed ErrQueueFull so callers
// (the fleet, load generators) can branch on backpressure, and the
// rejection must be booked per class in the report.
func TestSubmitErrQueueFullTyped(t *testing.T) {
	s := setup(t)
	srv, err := New(Options{Models: s.Models, QueueLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for i := 0; i < 5; i++ {
		_, err := srv.Submit(StreamConfig{
			Name:  fmt.Sprintf("s%d", i),
			Video: vid.Generate("qf", int64(i+1), vid.GenConfig{Frames: 12}),
			SLO:   50, Class: "bulk",
		})
		if err != nil {
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("rejection %v is not ErrQueueFull", err)
			}
			rejected++
		}
	}
	if rejected != 3 {
		t.Fatalf("rejected = %d, want 3 (queue limit 2)", rejected)
	}
	rep := srv.Drain()
	if rep.RejectedByClass["bulk"] != rejected {
		t.Fatalf("RejectedByClass[bulk] = %d, want %d",
			rep.RejectedByClass["bulk"], rejected)
	}
	// Conservation at the class level: arrivals the server saw equal
	// completions plus rejections.
	for _, cs := range rep.Classes {
		if cs.Completed+cs.Rejected != 5 {
			t.Fatalf("class %s: completed %d + rejected %d != 5 submissions",
				cs.Class, cs.Completed, cs.Rejected)
		}
	}
}

// fakeStream builds a queueable/activatable stream without a pipeline —
// enough state for the admission controller's barrier-side logic.
func fakeStream(s *Server, id int, class string, slo, occ, p95, cont float64) *stream {
	st := &stream{id: id, srv: s, cfg: StreamConfig{
		Name: fmt.Sprintf("%s-%d", class, id), Class: class, SLO: slo,
	}}
	st.weight = s.weightOf(class)
	st.occ = occ
	st.recentP95 = p95
	st.lastCont = cont
	return st
}

// bareServer builds a Server for admission-logic unit tests: no models,
// no workers — only the barrier-side state machines are exercised.
func bareServer(opts Options) *Server {
	return &Server{opts: opts.withDefaults()}
}

// Under WFQ the queue must interleave classes by weight: a weight-4
// class gets four slots for each weight-1 slot, not strict priority.
func TestWFQQueueOrder(t *testing.T) {
	s := bareServer(Options{
		Admission:    AdmissionWFQ,
		ClassWeights: map[string]int{"gold": 4, "besteffort": 1},
	})
	// Enqueue 2 best-effort first, then 4 gold: strict FIFO would keep
	// the best-effort pair in front; strict priority would put all gold
	// first. WFQ tags (besteffort: 1, 2; gold: 0.25, 0.5, 0.75, 1.0)
	// interleave: three gold, then the tag-tied pair (besteffort id 1
	// before gold id 6), then the last best-effort.
	for i := 1; i <= 2; i++ {
		s.enqueueLocked(fakeStream(s, i, "besteffort", 100, 0, 0, 0))
	}
	for i := 3; i <= 6; i++ {
		s.enqueueLocked(fakeStream(s, i, "gold", 33.3, 0, 0, 0))
	}
	var got []int
	for _, st := range s.queue {
		got = append(got, st.id)
	}
	want := []int{3, 4, 5, 1, 6, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WFQ queue order = %v, want %v", got, want)
		}
	}
}

// victimLocked must pick the lowest weight below the demand, breaking
// ties by highest occupancy, then by highest (youngest) id.
func TestVictimSelection(t *testing.T) {
	s := bareServer(Options{
		Preempt:      true,
		ClassWeights: map[string]int{"gold": 4, "silver": 2, "besteffort": 1},
	})
	s.active = []*stream{
		fakeStream(s, 1, "silver", 50, 0.9, 0, 0),
		fakeStream(s, 2, "besteffort", 100, 0.3, 0, 0),
		fakeStream(s, 3, "besteffort", 100, 0.7, 0, 0),
		fakeStream(s, 4, "besteffort", 100, 0.7, 0, 0),
	}
	v := s.victimLocked(4)
	if v == nil || v.id != 4 {
		t.Fatalf("victim for weight-4 demand = %+v, want id 4 (lowest weight, highest occ, youngest)", v)
	}
	// Demand of weight 2 cannot touch silver (weight not strictly lower
	// than... silver IS weight 2, not < 2 is false only for besteffort).
	v = s.victimLocked(2)
	if v == nil || v.cfg.Class != "besteffort" {
		t.Fatalf("victim for weight-2 demand = %+v, want a besteffort stream", v)
	}
	// Nothing outranked: no victim.
	if v := s.victimLocked(1); v != nil {
		t.Fatalf("weight-1 demand found victim %+v, want none", v)
	}
}

// A saturated board must evict best-effort streams when an unmeasured
// gold arrival heads the queue: the first-admission headroom cap
// (MaxOccupancy scaled down by the arrival's weight) triggers the
// queue-head preemption pass before the gold stream's first round, and
// the evictions are counted, buffered as events, and re-queued.
func TestQueueHeadPreemptionForGoldArrival(t *testing.T) {
	s := bareServer(Options{
		Admission: AdmissionWFQ, Preempt: true,
		ClassWeights: map[string]int{"gold": 4, "besteffort": 1},
	})
	// Five measured best-effort streams, comfortably within their own
	// loose SLO (feasOcc won't bind), saturating the board at 4.0.
	for i := 1; i <= 5; i++ {
		st := fakeStream(s, i, "besteffort", 100, 0.8, 60, 0.5)
		s.active = append(s.active, st)
	}
	// One unmeasured gold arrival in the queue.
	s.enqueueLocked(fakeStream(s, 6, "gold", 33.3, 0.5, 0, 0))

	s.preemptLocked()

	if len(s.active) != 0 {
		t.Fatalf("active after preemption = %d streams, want 0 (headroom cap %v)",
			len(s.active), s.opts.MaxOccupancy/4)
	}
	if s.preempts != 5 {
		t.Fatalf("preempts = %d, want 5", s.preempts)
	}
	if s.queue[0].cfg.Class != "gold" {
		t.Fatalf("queue head after preemption = %q, want the gold stream", s.queue[0].cfg.Class)
	}
	ev := s.DrainStreamEvents()
	if len(ev) != 5 {
		t.Fatalf("buffered events = %d, want 5", len(ev))
	}
	for _, e := range ev {
		if e.Kind != "preempt" || e.Class != "besteffort" || e.Retired {
			t.Fatalf("unexpected event %+v", e)
		}
	}
}

// An active high-tier stream whose measured tail latency is infeasible
// under the current aggregate occupancy must trigger eviction of
// lower-weight streams, and a stream past its preemption budget must be
// marked retired on the event.
func TestActiveInfeasibilityPreemption(t *testing.T) {
	s := bareServer(Options{
		Admission: AdmissionWFQ, Preempt: true,
		ClassWeights: map[string]int{"gold": 4, "besteffort": 1},
	})
	// Gold measured well over its SLO under heavy contention: tail 48ms
	// against a 33.3 SLO at contention 0.9 — feasOcc comes out far below
	// the aggregate.
	gold := fakeStream(s, 1, "gold", 33.3, 0.8, 48, 0.9)
	s.active = append(s.active, gold)
	for i := 2; i <= 5; i++ {
		s.active = append(s.active, fakeStream(s, i, "besteffort", 100, 0.8, 60, 0.9))
	}

	s.preemptLocked()

	if s.preempts == 0 {
		t.Fatal("no evictions despite gold SLO infeasibility")
	}
	for _, st := range s.active {
		if st.cfg.Class == "besteffort" && st.occ+gold.occ > gold.feasOcc {
			// Any survivors must leave gold within its feasible cap.
			agg := 0.0
			for _, a := range s.active {
				agg += a.occ
			}
			if agg > gold.feasOcc {
				t.Fatalf("aggregate %0.2f still above gold feasOcc %0.2f", agg, gold.feasOcc)
			}
		}
	}
	if len(s.queue) != s.preempts {
		t.Fatalf("evicted streams re-queued = %d, want %d", len(s.queue), s.preempts)
	}
}

// Past its eviction budget a stream must not bounce back to the queue;
// the event is marked Retired. (Budget -1 = retire on first eviction;
// retirement calls finalize, so this uses real served streams.)
func TestPreemptBudgetRetires(t *testing.T) {
	s := setup(t)
	srv, err := New(Options{
		Models: s.Models, Admission: AdmissionWFQ, Preempt: true,
		PreemptLimit: -1,
		ClassWeights: map[string]int{"gold": 4, "besteffort": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		class, slo := "besteffort", 100.0
		if i == 0 {
			class, slo = "gold", 33.3
		}
		v := vid.Generate(fmt.Sprintf("pr%d", i), int64(i+1), vid.GenConfig{Frames: 48})
		if _, err := srv.Submit(StreamConfig{
			Name: fmt.Sprintf("%s-%d", class, i), Video: v, SLO: slo, Class: class,
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep := srv.Drain()
	if rep.Preemptions == 0 {
		t.Fatal("expected preemptions under the contended mixed-tier run")
	}
	if rep.PreemptRetired != rep.Preemptions {
		t.Fatalf("PreemptRetired = %d, want %d (budget -1 retires on first eviction)",
			rep.PreemptRetired, rep.Preemptions)
	}
	retiredRows := 0
	for _, r := range rep.Streams {
		if r.PreemptRetired {
			if !r.Quarantined {
				t.Fatalf("stream %s retired by preemption but not marked quarantined", r.Name)
			}
			retiredRows++
		}
	}
	if retiredRows != rep.PreemptRetired {
		t.Fatalf("rows with PreemptRetired = %d, want %d", retiredRows, rep.PreemptRetired)
	}
}

// StreamStates is documented safe to call at any time; under the race
// detector this hammers it from another goroutine while rounds run,
// proving the barrier-side snapshots keep it off worker-owned state.
func TestStreamStatesConcurrentWithRounds(t *testing.T) {
	s := setup(t)
	srv, err := New(Options{Models: s.Models})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		v := vid.Generate(fmt.Sprintf("ss%d", i), int64(i+1), vid.GenConfig{Frames: 36})
		if _, err := srv.Submit(StreamConfig{Video: v, SLO: 50}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				for _, st := range srv.StreamStates() {
					_ = st.Frames
					_ = st.DegradeLevel
					_ = st.Occ
				}
			}
		}
	}()
	srv.Drain()
	close(done)
	wg.Wait()
}

// A class whose streams all departed with unserved finish tags (e.g.
// preempt-retired from the queue) must not bank that virtual-time debt:
// on re-arrival it re-enters at the current system virtual time like
// any idle class. Without barrier-time pruning of wfqLastF the
// re-arriving stream inherits the stale tag and is ordered behind peers
// it should interleave with.
func TestWFQDepartThenRearrive(t *testing.T) {
	s := bareServer(Options{
		Admission:    AdmissionWFQ,
		ClassWeights: map[string]int{"gold": 4, "besteffort": 1},
	})
	// A best-effort stream is enqueued (tag 1.0, wfqLastF[besteffort]=1)
	// and departs before being served — the preempt-retire path.
	be := fakeStream(s, 1, "besteffort", 100, 0, 0, 0)
	s.enqueueLocked(be)
	s.queue = nil // retired while queued: tag never advanced wfqVirt
	s.pruneWFQLocked()
	if _, ok := s.wfqLastF["besteffort"]; ok {
		t.Fatal("drained class kept its stale wfqLastF tag")
	}

	// Much later the schedule has moved on (gold kept the board busy).
	for i := 2; i <= 5; i++ {
		st := fakeStream(s, i, "gold", 33.3, 0, 0, 0)
		s.enqueueLocked(st)
		s.active = append(s.active, st) // admitted
		if st.finishTag > s.wfqVirt {
			s.wfqVirt = st.finishTag
		}
	}
	s.queue = nil

	// Re-arrival: the class must start from wfqVirt (tag = virt + 1/w),
	// not from its stale pre-departure tag.
	re := fakeStream(s, 6, "besteffort", 100, 0, 0, 0)
	s.enqueueLocked(re)
	want := s.wfqVirt + 1
	if re.finishTag != want {
		t.Fatalf("re-arrival finishTag = %v, want %v (wfqVirt %v + 1/weight)",
			re.finishTag, want, s.wfqVirt)
	}

	// Order check: with the fresh tag, a following gold burst interleaves
	// correctly — the re-arrived best-effort stream sits exactly one unit
	// past the schedule front, so three gold tags (virt+0.25 .. +0.75)
	// sort strictly before it and the fourth (virt+1.0) ties, losing the
	// (tag, id) tie-break to the earlier-arrived stream: position 3.
	// With the stale tag the stream would have landed at the queue tail.
	for i := 7; i <= 12; i++ {
		s.enqueueLocked(fakeStream(s, i, "gold", 33.3, 0, 0, 0))
	}
	pos := -1
	for i, st := range s.queue {
		if st == re {
			pos = i
		}
	}
	if pos != 3 {
		var order []int
		for _, st := range s.queue {
			order = append(order, st.id)
		}
		t.Fatalf("re-arrived stream at queue position %d, want 3 (order %v)", pos, order)
	}

	// Live classes must never be pruned: gold is still active.
	s.pruneWFQLocked()
	if _, ok := s.wfqLastF["gold"]; !ok {
		t.Fatal("active class was pruned")
	}
}

// Regression shape from the bug report: without pruning, the stale tag
// ordered the re-arrival strictly after where a fresh arrival of the
// same class would land.
func TestWFQPruneKeepsQueuedClasses(t *testing.T) {
	s := bareServer(Options{
		Admission:    AdmissionWFQ,
		ClassWeights: map[string]int{"gold": 4, "besteffort": 1},
	})
	s.enqueueLocked(fakeStream(s, 1, "besteffort", 100, 0, 0, 0))
	s.pruneWFQLocked() // stream still queued: class is live
	if _, ok := s.wfqLastF["besteffort"]; !ok {
		t.Fatal("queued class was pruned")
	}
}

// tailPct must follow the configured admission quantile: the preemption
// controller plans against the same tail the schedulers admit on, and
// falls back to the P95 criterion under mean admission.
func TestTailPctFollowsRiskQuantile(t *testing.T) {
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 95},    // mean admission: the SLO attainment criterion's P95
		{0.95, 95}, // risk at the default quantile coincides
		{0.99, 99},
		{0.5, 50},
	}
	for _, c := range cases {
		s := bareServer(Options{Preempt: true, RiskQuantile: c.q})
		if got := s.tailPct(); got != c.want {
			t.Fatalf("tailPct with RiskQuantile %v = %v, want %v", c.q, got, c.want)
		}
	}
}

// Under a seeded contention-burst latency profile, planning against a
// higher quantile must tighten the feasible-occupancy cap: the p99 tail
// of a bursty window sits well above its p95, so the occupancy headroom
// that keeps the SLO feasible shrinks. This is the quantile inversion
// the preemption controller performs when RiskQuantile is configured —
// the cap is solved from the measured q-quantile, not the mean.
func TestFeasibleOccQuantileInversion(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var lat metric.LatencySeries
	for i := 0; i < 400; i++ {
		v := 40 + 4*rng.NormFloat64()
		if rng.Float64() < 0.06 {
			v *= 1.8 // contention burst
		}
		if v < 1 {
			v = 1
		}
		lat.Add(v)
	}
	mk := func(q float64) (*Server, *stream) {
		s := bareServer(Options{Preempt: true, RiskQuantile: q,
			ClassWeights: map[string]int{"gold": 4}})
		st := fakeStream(s, 1, "gold", 60, 0.7, lat.PercentileSince(0, s.tailPct()), 0.5)
		return s, st
	}
	s95, st95 := mk(0)    // mean admission plans against P95
	s99, st99 := mk(0.99) // risk admission at q=0.99 plans against P99
	if st99.recentP95 <= st95.recentP95 {
		t.Fatalf("burst profile should have p99 (%v) > p95 (%v)",
			st99.recentP95, st95.recentP95)
	}
	cap95 := s95.feasibleOccLocked(st95)
	cap99 := s99.feasibleOccLocked(st99)
	if math.IsInf(cap95, 1) || math.IsInf(cap99, 1) {
		t.Fatalf("both caps should be finite: p95 cap %v, p99 cap %v", cap95, cap99)
	}
	if cap99 >= cap95 {
		t.Fatalf("p99 planning must tighten the cap: p99 cap %v >= p95 cap %v", cap99, cap95)
	}
}

// feasibleOccLocked's two-stage solve: a stream that fits the shrunk
// planning budget gets its cap from the budget; one that cannot hit the
// budget even alone — but can still meet the raw SLO — is planned
// against the raw SLO instead of being written off; and only a stream
// whose tail exceeds the raw SLO with the board to itself reports +Inf
// (preemption cannot help it).
func TestFeasibleOccBudgetVsRawSLOFallback(t *testing.T) {
	s := bareServer(Options{Preempt: true})
	// Budget-feasible: tail 46 against SLO 60 (budget 52.8) at current
	// contention 0.5 — headroom exists, the cap is finite.
	fit := fakeStream(s, 1, "gold", 60, 0.9, 46, 0.5)
	capFit := s.feasibleOccLocked(fit)
	if math.IsInf(capFit, 1) {
		t.Fatal("budget-feasible stream should get a finite cap")
	}
	// Raw-SLO fallback: tail 46 against SLO 50 at contention 0 — the
	// 44ms planning budget is below the tail even on an idle board, but
	// the raw 50ms SLO is reachable, so the cap must protect the SLO
	// rather than return +Inf.
	raw := fakeStream(s, 2, "gold", 50, 0.9, 46, 0)
	capRaw := s.feasibleOccLocked(raw)
	if math.IsInf(capRaw, 1) {
		t.Fatal("raw-SLO fallback should yield a finite cap, not +Inf")
	}
	// The fallback plans against the looser raw-SLO target from a
	// lower contention baseline, so its cap cannot exceed the
	// comfortably-feasible stream's.
	if capRaw >= capFit {
		t.Fatalf("fallback cap %v should be tighter than the budget-feasible cap %v",
			capRaw, capFit)
	}
	// Hopeless: tail above the raw SLO at zero contention — even an
	// empty board cannot save it; preemption must not be attempted.
	lost := fakeStream(s, 3, "gold", 50, 0.9, 56, 0)
	if got := s.feasibleOccLocked(lost); !math.IsInf(got, 1) {
		t.Fatalf("stream infeasible even alone should report +Inf, got %v", got)
	}
}
