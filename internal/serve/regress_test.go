package serve

// Regression tests for the concurrency fixes (concurrent Drain, default
// seed assignment, the Coupling zero-sentinel, clone-before-check) and
// for the observability layer's determinism and passivity guarantees.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"litereconfig/internal/obs"
)

func TestConcurrentDrainReturnsOneReport(t *testing.T) {
	s := setup(t)
	srv, err := New(Options{Models: s.Models})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := srv.Submit(StreamConfig{Video: video(700+int64(i), 30), SLO: 50}); err != nil {
			t.Fatal(err)
		}
	}
	const callers = 8
	results := make([]*Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = srv.Drain()
		}()
	}
	wg.Wait()
	if results[0] == nil {
		t.Fatal("Drain returned nil")
	}
	for i, r := range results {
		if r != results[0] {
			t.Fatalf("caller %d got a different report: %p vs %p", i, r, results[0])
		}
	}
	if len(results[0].Streams) != 3 {
		t.Fatalf("streams = %d, want 3", len(results[0].Streams))
	}
}

func TestConcurrentSubmitAndDrain(t *testing.T) {
	s := setup(t)
	srv, err := New(Options{Models: s.Models})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(StreamConfig{Video: video(710, 20), SLO: 50}); err != nil {
		t.Fatal(err)
	}
	// Race submissions against the drain: each submission must either be
	// served or be refused with a draining error — never lost, never
	// admitted half-built.
	var wg sync.WaitGroup
	accepted := make([]bool, 6)
	for i := range accepted {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := srv.Submit(StreamConfig{Video: video(720+int64(i), 20), SLO: 50})
			accepted[i] = err == nil
		}()
	}
	r := srv.Drain()
	wg.Wait()
	served := 0
	for _, ok := range accepted {
		if ok {
			served++
		}
	}
	if got := len(r.Streams); got != 1+served {
		t.Fatalf("served %d streams, want 1 + %d accepted", got, served)
	}
	if srv.Clones() != 1+served {
		t.Fatalf("clones = %d, want %d (one per served stream)", srv.Clones(), 1+served)
	}
}

func TestDefaultSeedsAreDistinctPerStream(t *testing.T) {
	s := setup(t)
	srv, err := New(Options{Models: s.Models})
	if err != nil {
		t.Fatal(err)
	}
	// Same video, no explicit seed: each stream must get its own default
	// realization (seed 1 + id), not all collapse onto seed 1.
	v := video(730, 40)
	var handles []*Stream
	for i := 0; i < 3; i++ {
		h, err := srv.Submit(StreamConfig{Video: v, SLO: 33.3})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for i, h := range handles {
		if got, want := h.st.cfg.Seed, 1+int64(h.st.id); got != want {
			t.Fatalf("stream %d default seed = %d, want %d", i, got, want)
		}
	}
	r := srv.Drain()
	distinct := false
	for i := 1; i < len(r.Streams); i++ {
		if r.Streams[i].MeanMS != r.Streams[0].MeanMS {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("identical videos with default seeds produced identical realizations; seeds collapsed")
	}
}

func TestNegativeCouplingMeansUncoupled(t *testing.T) {
	s := setup(t)
	srv, err := New(Options{Models: s.Models, Coupling: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.Options().Coupling; got != 0 {
		t.Fatalf("Coupling -1 should mean an explicit zero, got %v", got)
	}
	for i := 0; i < 3; i++ {
		if _, err := srv.Submit(StreamConfig{Video: video(740+int64(i), 30), SLO: 50}); err != nil {
			t.Fatal(err)
		}
	}
	r := srv.Drain()
	if r.MeanContention != 0 {
		t.Fatalf("uncoupled board generated contention %v, want 0", r.MeanContention)
	}
	// And the zero value still selects the documented default.
	srv2, err := New(Options{Models: s.Models})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv2.Options().Coupling; got != DefaultCoupling {
		t.Fatalf("zero Coupling should default to %v, got %v", DefaultCoupling, got)
	}
	srv2.Drain()
}

func TestRejectedSubmissionDoesNotClone(t *testing.T) {
	s := setup(t)
	srv, err := New(Options{Models: s.Models, QueueLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(StreamConfig{Video: video(750, 20), SLO: 50}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(StreamConfig{Video: video(751, 20), SLO: 50}); err == nil {
		t.Fatal("second submission must be rejected by backpressure")
	}
	if got := srv.Clones(); got != 1 {
		t.Fatalf("clones = %d, want 1: a rejected submission must not pay the clone", got)
	}
	srv.Drain()
	if _, err := srv.Submit(StreamConfig{Video: video(752, 20), SLO: 50}); err == nil {
		t.Fatal("submit after drain must error")
	}
	if got := srv.Clones(); got != 1 {
		t.Fatalf("clones = %d after post-drain submit, want 1", got)
	}
}

// observedRun drains n streams with an observer attached and returns the
// report plus the serialized decision trace.
func observedRun(t *testing.T, opts Options, n int) (*Result, []byte) {
	t.Helper()
	opts.Observer = obs.New()
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_, err := srv.Submit(StreamConfig{
			Video: video(800+int64(i), 40),
			SLO:   33.3,
			Seed:  50 + int64(i),
			Name:  fmt.Sprintf("s%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	r := srv.Drain()
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return r, buf.Bytes()
}

func TestTraceByteIdenticalAcrossRuns(t *testing.T) {
	s := setup(t)
	r1, trace1 := observedRun(t, Options{Models: s.Models, GPUSlots: 2}, 4)
	_, trace2 := observedRun(t, Options{Models: s.Models, GPUSlots: 2}, 4)
	if len(trace1) == 0 {
		t.Fatal("observed run wrote an empty trace")
	}
	if !bytes.Equal(trace1, trace2) {
		t.Fatal("identical runs wrote different traces")
	}

	// One decision per GoF boundary, with both the prediction and the
	// realized outcome filled in.
	decisions := r1.Decisions()
	framesByStream := map[int]int{}
	for i, d := range decisions {
		if d.Branch == "" || d.GoFFrames <= 0 {
			t.Fatalf("decision %d incomplete: %+v", i, d)
		}
		if d.PredLatencyMS <= 0 || d.RealizedMS <= 0 {
			t.Fatalf("decision %d missing predicted/realized latency: %+v", i, d)
		}
		// Features may legitimately be empty (the cost-benefit pass can
		// decline every heavy feature), but the policy is always known.
		if d.Policy == "" {
			t.Fatalf("decision %d missing policy: %+v", i, d)
		}
		if d.FeasibleBranches <= 0 && !d.Fallback {
			t.Fatalf("decision %d has no feasible branches yet no fallback: %+v", i, d)
		}
		framesByStream[d.Stream] += d.GoFFrames
	}
	for _, sr := range r1.Streams {
		if got := framesByStream[sr.ID]; got != sr.Frames {
			t.Fatalf("stream %d decisions cover %d frames, want %d (one decision per GoF)",
				sr.ID, got, sr.Frames)
		}
	}

	// The metrics registry saw the same structure.
	snap := r1.Metrics()
	text := snap.Text()
	for _, want := range []string{
		"serve_admissions_total", "serve_rounds_total",
		"harness_gofs_total", "sched_decisions_total",
	} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Fatalf("metrics dump missing %q:\n%s", want, text)
		}
	}
}

func TestObserverDoesNotChangeDecisions(t *testing.T) {
	s := setup(t)
	observed, _ := observedRun(t, Options{Models: s.Models, GPUSlots: 2}, 4)

	srv, err := New(Options{Models: s.Models, GPUSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		_, err := srv.Submit(StreamConfig{
			Video: video(800+int64(i), 40),
			SLO:   33.3,
			Seed:  50 + int64(i),
			Name:  fmt.Sprintf("s%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	plain := srv.Drain()

	if len(observed.Streams) != len(plain.Streams) {
		t.Fatalf("stream counts diverged: %d vs %d", len(observed.Streams), len(plain.Streams))
	}
	for i := range plain.Streams {
		o, p := observed.Streams[i], plain.Streams[i]
		if o.MAP != p.MAP || o.P95MS != p.P95MS || o.MeanMS != p.MeanMS ||
			o.Switches != p.Switches || o.BranchCoverage != p.BranchCoverage ||
			o.MeanContention != p.MeanContention || o.Rounds != p.Rounds {
			t.Fatalf("observer changed stream %d outcome:\nobserved: %+v\nplain:    %+v", i, o, p)
		}
	}

	// Unobserved results answer the observability accessors harmlessly.
	if got := plain.Decisions(); got != nil {
		t.Fatalf("unobserved run has decisions: %v", got)
	}
	var buf bytes.Buffer
	if err := plain.WriteTrace(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("unobserved trace: err=%v len=%d", err, buf.Len())
	}
	if text := plain.Metrics().Text(); text != "" {
		t.Fatalf("unobserved metrics non-empty:\n%s", text)
	}
}
