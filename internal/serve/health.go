package serve

// Health is a stream's state in the engine's per-stream health machine.
// Healthy streams run normally. Degraded streams are shedding load: the
// scheduler's watchdog ladder is engaged, the stream has made no
// progress recently, or it has already survived a worker panic.
// Quarantined streams have been retired from the board — their panic
// retries are exhausted or they stalled for Options.StallRounds
// consecutive rounds — with whatever partial results they produced
// finalized into the report.
type Health int

const (
	HealthHealthy Health = iota
	HealthDegraded
	HealthQuarantined
)

// String returns the canonical lower-case state name.
func (h Health) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthQuarantined:
		return "quarantined"
	}
	return "unknown"
}
