package serve

import (
	"bytes"
	"testing"

	"litereconfig/internal/adapt"
	"litereconfig/internal/obs"
)

// drainAdapted serves three fixed-seed streams with online adaptation
// on and returns the drain report plus the run's observer.
func drainAdapted(t *testing.T, cfg *adapt.Config) (*Result, *obs.Observer, *Server) {
	t.Helper()
	s := setup(t)
	o := obs.New()
	srv, err := New(Options{Models: s.Models, GPUSlots: 2, Adapt: cfg, Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := srv.Submit(StreamConfig{
			Video: video(500+int64(i), 60),
			SLO:   50,
			Seed:  40 + int64(i),
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	return srv.Drain(), o, srv
}

// TestServeAdaptationWiring checks the per-stream adapter plumbing: the
// server creates a board registry, every stream runs its own adaptation
// loop on its cloned models, and the report carries the adapt columns.
// Warm-up is shortened so even a stream that settles on a large-GoF
// branch (few decisions across its 60 frames) refits at least once.
func TestServeAdaptationWiring(t *testing.T) {
	res, _, srv := drainAdapted(t, &adapt.Config{WarmupSamples: 1})
	if srv.AdaptRegistry() == nil {
		t.Fatal("adapted server has no registry")
	}
	refits := 0
	for _, row := range res.Streams {
		if row.ModelVersion == "" {
			t.Errorf("stream %s has no model version", row.Name)
		}
		if row.Refits == 0 {
			t.Errorf("stream %s never refit its challenger", row.Name)
		}
		refits += row.Refits
	}
	if res.Refits != refits {
		t.Errorf("aggregate refits = %d, rows sum to %d", res.Refits, refits)
	}
	if res.Promotions != srv.AdaptRegistry().Promotions() {
		t.Errorf("aggregate promotions = %d, registry says %d",
			res.Promotions, srv.AdaptRegistry().Promotions())
	}
}

// TestServeUnadaptedReportUnchanged asserts the off state: no registry,
// no adapt columns, no adapt_* fields in the decision trace.
func TestServeUnadaptedReportUnchanged(t *testing.T) {
	s := setup(t)
	o := obs.New()
	srv, err := New(Options{Models: s.Models, Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(StreamConfig{Video: video(501, 40), SLO: 50, Seed: 41}); err != nil {
		t.Fatal(err)
	}
	res := srv.Drain()
	if srv.AdaptRegistry() != nil {
		t.Fatal("unadapted server grew a registry")
	}
	if res.Streams[0].ModelVersion != "" || res.Refits != 0 {
		t.Fatalf("unadapted report carries adapt stats: %+v", res.Streams[0])
	}
	var buf bytes.Buffer
	if err := res.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("adapt_")) {
		t.Error("unadapted trace contains adapt_* fields")
	}
}

// TestServeAdaptTraceDeterministic runs the same adapted board twice:
// promotions only land at GoF barriers and coupling only changes at
// round barriers, so fixed seeds must give byte-identical traces.
func TestServeAdaptTraceDeterministic(t *testing.T) {
	var traces [2]bytes.Buffer
	for i := range traces {
		res, _, _ := drainAdapted(t, &adapt.Config{})
		if err := res.WriteTrace(&traces[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(traces[0].Bytes(), traces[1].Bytes()) {
		t.Fatal("adapted drains with identical seeds wrote different traces")
	}
	if !bytes.Contains(traces[0].Bytes(), []byte(`"adapt_version"`)) {
		t.Error("adapted trace carries no adapt_version fields")
	}
}
