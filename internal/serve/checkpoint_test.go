package serve

import (
	"bytes"
	"sync"
	"testing"

	"litereconfig/internal/obs"
	"litereconfig/internal/testutil"
)

// stepUntil steps the server until cond holds or the board drains,
// failing the test if the condition never becomes true.
func stepUntil(t *testing.T, srv *Server, what string, cond func() bool) {
	t.Helper()
	for !cond() {
		if !srv.StepRound() {
			t.Fatalf("board drained before %s", what)
		}
	}
}

func TestKillDiscardsLiveKeepsFinished(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := setup(t)
	srv, err := New(Options{Models: s.Models})
	if err != nil {
		t.Fatal(err)
	}
	// A short stream that finishes early and a long one that is still
	// live when the board fail-stops.
	if _, err := srv.Submit(StreamConfig{Name: "short", Video: video(41, 12), SLO: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(StreamConfig{Name: "long", Video: video(42, 96), SLO: 100}); err != nil {
		t.Fatal(err)
	}
	stepUntil(t, srv, "the short stream finished", func() bool {
		_, _, finished := srv.Counts()
		return finished == 1
	})
	srv.Kill()

	// Only the already-finished stream survives the crash; the live one
	// is gone without a row — the fleet restores it from a checkpoint.
	rep := srv.Drain() // Drain after Kill returns the stored report
	if len(rep.Streams) != 1 || rep.Streams[0].Name != "short" {
		t.Fatalf("post-kill report rows = %+v, want only the finished stream", rep.Streams)
	}
	if rep.Streams[0].Frames != 12 {
		t.Fatalf("finished stream frames = %d, want 12", rep.Streams[0].Frames)
	}
	if srv.StepRound() {
		t.Fatal("killed board still stepping rounds")
	}
}

func TestCheckpointRestoreCompletesStream(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := setup(t)
	const total = 60
	a, err := New(Options{Models: s.Models})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Submit(StreamConfig{Name: "ckpt", Video: video(50, total), SLO: 100, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	// Run the stream past its first GoF so the checkpoint carries real
	// progress, then cut the checkpoint and crash the board.
	var ck Checkpoint
	stepUntil(t, a, "the stream completed a GoF", func() bool {
		cks := a.Checkpoints()
		if len(cks) == 1 && cks[0].GoFs > 0 {
			ck = cks[0]
			return true
		}
		return false
	})
	if ck.Frames <= 0 || ck.Frames >= total || ck.SimMS <= 0 {
		t.Fatalf("checkpoint did not capture mid-run progress: %+v", ck)
	}
	a.Kill()

	b, err := New(Options{Models: s.Models})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Restore(ck, nil); err != nil {
		t.Fatal(err)
	}
	rep := b.Drain()
	if len(rep.Streams) != 1 {
		t.Fatalf("rows = %d, want 1", len(rep.Streams))
	}
	row := rep.Streams[0]
	if !row.Recovered || row.Recoveries != 1 {
		t.Fatalf("restored stream not marked recovered: %+v", row)
	}
	if row.ResumeFrame != ck.Frames {
		t.Fatalf("ResumeFrame = %d, want checkpoint frame %d", row.ResumeFrame, ck.Frames)
	}
	// The final incarnation's metrics cover exactly the replayed-and-new
	// frames [ResumeFrame, end): no frame is double-delivered or lost.
	if row.Frames != total-ck.Frames {
		t.Fatalf("restored incarnation processed %d frames, want %d", row.Frames, total-ck.Frames)
	}
	if row.Quarantined {
		t.Fatalf("restored stream quarantined: %s", row.QuarantineReason)
	}
	// Conservation: the single row lands in the Recovered bucket.
	if len(rep.Classes) != 1 || rep.Classes[0].Recovered != 1 || rep.Classes[0].Completed != 0 {
		t.Fatalf("class buckets wrong: %+v", rep.Classes)
	}
}

// TestRestoreReplayDeterminism restores one checkpoint onto two
// identical fresh boards: the replayed incarnations must make the same
// decisions — the recovery path is inside the fixed-seed determinism
// envelope, so fleet traces stay byte-identical across runs.
func TestRestoreReplayDeterminism(t *testing.T) {
	s := setup(t)
	src, err := New(Options{Models: s.Models})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Submit(StreamConfig{Name: "det", Video: video(51, 48), SLO: 50, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	var ck Checkpoint
	stepUntil(t, src, "the stream completed a GoF", func() bool {
		cks := src.Checkpoints()
		if len(cks) == 1 && cks[0].GoFs > 0 {
			ck = cks[0]
			return true
		}
		return false
	})
	src.Kill()

	var traces [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		dst, err := New(Options{Models: s.Models, Observer: obs.New()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dst.Restore(ck, nil); err != nil {
			t.Fatal(err)
		}
		rep := dst.Drain()
		if err := rep.WriteTrace(&traces[i]); err != nil {
			t.Fatal(err)
		}
	}
	if traces[0].Len() == 0 {
		t.Fatal("restored run produced no decision trace")
	}
	if !bytes.Equal(traces[0].Bytes(), traces[1].Bytes()) {
		t.Fatal("replay from the same checkpoint diverged between identical boards")
	}
}

// TestDetachRacesPreemptionAtBarrier pins the migration-vs-preemption
// race on one stream: a best-effort victim is active with a gold
// arrival pending whose admission is guaranteed to evict it
// (PreemptLimit -1 retires on first eviction), and Detach — the fleet's
// evacuation path — fires concurrently with the barrier that runs the
// preemption pass. The server mutex serializes the two; whoever wins
// consumes the stream, the loser observes it gone. Either way the
// victim ends in exactly one report row, in exactly one conservation
// bucket, and the WFQ tag table holds no stale class entries.
func TestDetachRacesPreemptionAtBarrier(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := setup(t)
	detachWon, preemptWon := 0, 0
	for i := 0; i < 8 && (detachWon == 0 || preemptWon == 0); i++ {
		srv, err := New(Options{
			Models: s.Models, Admission: AdmissionWFQ, Preempt: true,
			PreemptLimit: -1, GPUSlots: 1, MaxOccupancy: 1,
			ClassWeights: map[string]int{"gold": 4, "besteffort": 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		victim, err := srv.Submit(StreamConfig{
			Name: "victim", Video: video(60+int64(i), 600), SLO: 100, Class: "besteffort",
		})
		if err != nil {
			t.Fatal(err)
		}
		// Let the victim run alone until it has a measured occupancy, so
		// the gold arrival's admission check is guaranteed to demand an
		// eviction at the next barrier.
		for r := 0; r < 3; r++ {
			if !srv.StepRound() {
				t.Fatal("victim drained during warm-up")
			}
		}
		if _, err := srv.Submit(StreamConfig{
			Name: "gold", Video: video(70+int64(i), 24), SLO: 100, Class: "gold",
			EstOccupancy: 1,
		}); err != nil {
			t.Fatal(err)
		}

		// The race: one goroutine runs the barrier (preemption pass first),
		// the other detaches the same stream for migration.
		var (
			wg   sync.WaitGroup
			d    *Detached
			derr error
		)
		wg.Add(2)
		go func() { defer wg.Done(); d, derr = srv.Detach(victim) }()
		go func() { defer wg.Done(); srv.StepRound() }()
		wg.Wait()

		if derr == nil {
			detachWon++
			d.Retire("evacuated in race test")
		} else {
			preemptWon++
		}
		rep := srv.Drain()

		rows := 0
		for _, row := range rep.Streams {
			if row.Name != "victim" {
				continue
			}
			rows++
			// Winner pinning: a detached victim is fleet-retired, a
			// preempted one is preempt-retired — never both, never neither.
			if derr == nil && (!row.FleetRetired || row.PreemptRetired) {
				t.Fatalf("detach won but row says %+v", row)
			}
			if derr != nil && (row.FleetRetired || !row.PreemptRetired) {
				t.Fatalf("preemption won but row says %+v", row)
			}
		}
		if rows != 1 {
			t.Fatalf("victim has %d report rows, want exactly 1", rows)
		}
		// Conservation: one victim row in Retired (detach) xor one
		// completed-bucket row (preempt-retire counts as Completed with
		// PreemptRetired set), plus the gold completion.
		for _, cs := range rep.Classes {
			if got := cs.Completed + cs.Rejected + cs.Retired + cs.Recovered; got != cs.Streams+cs.Rejected {
				t.Fatalf("class %s buckets do not cover its rows: %+v", cs.Class, cs)
			}
		}
		// No stale WFQ tags survive the drain: every class left the board.
		srv.mu.Lock()
		tags := len(srv.wfqLastF)
		srv.mu.Unlock()
		if tags != 0 {
			t.Fatalf("wfqLastF holds %d stale class tags after drain", tags)
		}
	}
	if detachWon == 0 && preemptWon == 0 {
		t.Fatal("race never resolved either way")
	}
	t.Logf("detach won %d, preemption won %d", detachWon, preemptWon)
}
