package testutil

import (
	"sync"
	"testing"
)

// fakeTB records failures instead of failing the real test.
type fakeTB struct {
	cleanups []func()
	failed   bool
}

func (f *fakeTB) Helper()               {}
func (f *fakeTB) Cleanup(fn func())     { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) Errorf(string, ...any) { f.failed = true }
func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func TestCheckGoroutinesPassesWhenBalanced(t *testing.T) {
	ft := &fakeTB{}
	CheckGoroutines(ft)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
	ft.runCleanups()
	if ft.failed {
		t.Fatal("balanced goroutines reported as a leak")
	}
}

func TestCheckGoroutinesFlagsLeak(t *testing.T) {
	ft := &fakeTB{}
	CheckGoroutines(ft)
	block := make(chan struct{})
	started := make(chan struct{})
	go func() { close(started); <-block }()
	<-started
	ft.runCleanups()
	close(block)
	if !ft.failed {
		t.Fatal("leaked goroutine not flagged")
	}
}
