// Package testutil holds small helpers shared by the repo's test
// suites. It must only ever be imported from _test.go files.
package testutil

import (
	"runtime"
	"time"
)

// TB is the subset of testing.TB the helpers need, kept narrow so the
// package has no import cycle with the suites using it.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// CheckGoroutines snapshots the current goroutine count and registers a
// cleanup that fails the test if the count has not returned to the
// baseline by the end of it. Worker pools exit inside Drain/Kill (task
// channel closed, WaitGroup awaited), so a well-behaved test ends at
// its starting count; the check allows the runtime a few scheduling
// beats to retire exiting stacks before declaring a leak.
//
// Call it first in the test, before anything that spawns goroutines:
//
//	func TestSomething(t *testing.T) {
//		testutil.CheckGoroutines(t)
//		...
//	}
func CheckGoroutines(t TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		for i := 0; i < 50; i++ {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
	})
}
