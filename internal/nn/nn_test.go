package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestDenseForwardKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(2, 2, false, rng)
	// Overwrite with known weights: y0 = x0 + 2*x1 + 1, y1 = -x0 + 0.5.
	d.W = []float64{1, 2, -1, 0}
	d.B = []float64{1, 0.5}
	y := d.Forward([]float64{3, 4})
	if math.Abs(y[0]-12) > 1e-12 || math.Abs(y[1]-(-2.5)) > 1e-12 {
		t.Fatalf("forward = %v", y)
	}
}

func TestDenseReLUClampsNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(1, 1, true, rng)
	d.W = []float64{-1}
	d.B = []float64{0}
	if y := d.Forward([]float64{5}); y[0] != 0 {
		t.Fatalf("ReLU output = %v, want 0", y[0])
	}
	if y := d.Forward([]float64{-5}); y[0] != 5 {
		t.Fatalf("ReLU output = %v, want 5", y[0])
	}
}

func TestDensePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(0, 3, false, rand.New(rand.NewSource(1)))
}

// numericGradCheck verifies backprop against finite differences for a
// small network.
func TestGradientCheck(t *testing.T) {
	n := NewNet(3, 4, 5, 2)
	x := []float64{0.3, -0.7, 1.2, 0.1}
	target := []float64{0.5, -0.2}

	loss := func() float64 {
		pred := n.Forward(x)
		var l float64
		for i := range pred {
			d := pred[i] - target[i]
			l += d * d
		}
		return l / float64(len(pred))
	}

	// Analytic gradients.
	grad := make([]float64, 2)
	pred := n.Forward(x)
	MSEGrad(pred, target, grad)
	n.Backward(grad)

	const eps = 1e-6
	for li, layer := range n.Layers {
		for wi := range layer.W {
			analytic := layer.gw[wi]
			orig := layer.W[wi]
			layer.W[wi] = orig + eps
			lp := loss()
			layer.W[wi] = orig - eps
			lm := loss()
			layer.W[wi] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(analytic-numeric) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d weight %d: analytic %v vs numeric %v",
					li, wi, analytic, numeric)
			}
		}
		for bi := range layer.B {
			analytic := layer.gb[bi]
			orig := layer.B[bi]
			layer.B[bi] = orig + eps
			lp := loss()
			layer.B[bi] = orig - eps
			lm := loss()
			layer.B[bi] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(analytic-numeric) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d bias %d: analytic %v vs numeric %v",
					li, bi, analytic, numeric)
			}
		}
	}
}

func TestTwoTowerGradientCheck(t *testing.T) {
	tt := NewTwoTower(TwoTowerConfig{InA: 3, InB: 4, ProjDim: 5,
		Hidden: []int{6}, Out: 2, Seed: 7})
	a := []float64{0.1, -0.5, 0.9}
	b := []float64{0.4, 0.2, -0.3, 0.8}
	target := []float64{0.3, 0.7}

	loss := func() float64 {
		pred := tt.Forward(a, b)
		var l float64
		for i := range pred {
			d := pred[i] - target[i]
			l += d * d
		}
		return l / float64(len(pred))
	}
	grad := make([]float64, 2)
	pred := tt.Forward(a, b)
	MSEGrad(pred, target, grad)
	tt.Backward(grad)

	const eps = 1e-6
	check := func(name string, w []float64, g []float64) {
		for i := range w {
			orig := w[i]
			w[i] = orig + eps
			lp := loss()
			w[i] = orig - eps
			lm := loss()
			w[i] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(g[i]-numeric) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, i, g[i], numeric)
			}
		}
	}
	check("projA.W", tt.ProjA.W, tt.ProjA.gw)
	check("projB.W", tt.ProjB.W, tt.ProjB.gw)
	check("trunk0.W", tt.Trunk.Layers[0].W, tt.Trunk.Layers[0].gw)
}

func TestNetLearnsLinearFunction(t *testing.T) {
	// y = 2a - b + 0.5 is learnable to near-zero loss.
	rng := rand.New(rand.NewSource(5))
	var xs, ys [][]float64
	for i := 0; i < 256; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		xs = append(xs, []float64{a, b})
		ys = append(ys, []float64{2*a - b + 0.5})
	}
	n := NewNet(1, 2, 16, 1)
	tr := Trainer{LR: 0.05, Epochs: 200, Seed: 1}
	losses := tr.FitNet(n, xs, ys)
	final := losses[len(losses)-1]
	if final > 1e-3 {
		t.Fatalf("final loss = %v, want < 1e-3 (first %v)", final, losses[0])
	}
	if losses[0] < final {
		t.Fatal("loss did not decrease")
	}
}

func TestNetLearnsNonlinearFunction(t *testing.T) {
	// y = |a| requires the hidden ReLU layer.
	rng := rand.New(rand.NewSource(6))
	var xs, ys [][]float64
	for i := 0; i < 512; i++ {
		a := rng.Float64()*2 - 1
		xs = append(xs, []float64{a})
		ys = append(ys, []float64{math.Abs(a)})
	}
	n := NewNet(2, 1, 16, 1)
	tr := Trainer{LR: 0.05, Epochs: 300, Seed: 2}
	losses := tr.FitNet(n, xs, ys)
	if final := losses[len(losses)-1]; final > 5e-3 {
		t.Fatalf("final loss = %v, want < 5e-3", final)
	}
}

func TestTwoTowerLearnsCrossDependence(t *testing.T) {
	// Output depends on both towers: y = a0 * b0.
	rng := rand.New(rand.NewSource(8))
	var as, bs, ys [][]float64
	for i := 0; i < 512; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		as = append(as, []float64{a})
		bs = append(bs, []float64{b})
		ys = append(ys, []float64{a * b})
	}
	tt := NewTwoTower(TwoTowerConfig{InA: 1, InB: 1, ProjDim: 8,
		Hidden: []int{16, 16}, Out: 1, Seed: 3})
	tr := Trainer{LR: 0.02, Epochs: 400, Seed: 4}
	losses := tr.FitTwoTower(tt, as, bs, ys)
	if final := losses[len(losses)-1]; final > 1e-2 {
		t.Fatalf("final loss = %v, want < 1e-2", final)
	}
}

func TestTrainerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var xs, ys [][]float64
	for i := 0; i < 64; i++ {
		a := rng.Float64()
		xs = append(xs, []float64{a})
		ys = append(ys, []float64{a * 2})
	}
	run := func() float64 {
		n := NewNet(11, 1, 8, 1)
		tr := Trainer{Epochs: 20, Seed: 12}
		losses := tr.FitNet(n, xs, ys)
		return losses[len(losses)-1]
	}
	if run() != run() {
		t.Fatal("training not deterministic")
	}
}

func TestEarlyStopping(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var xs, ys [][]float64
	for i := 0; i < 64; i++ {
		a := rng.Float64()
		xs = append(xs, []float64{a})
		ys = append(ys, []float64{a})
	}
	n := NewNet(13, 1, 8, 1)
	tr := Trainer{Epochs: 400, Seed: 5, Tol: 1e-12, Patience: 5}
	losses := tr.FitNet(n, xs, ys)
	if len(losses) >= 400 {
		t.Fatalf("early stopping never fired: ran %d epochs", len(losses))
	}
}

func TestL2ShrinksWeights(t *testing.T) {
	// With pure-noise targets and strong L2, weights shrink toward zero
	// relative to no regularization.
	rng := rand.New(rand.NewSource(11))
	var xs, ys [][]float64
	for i := 0; i < 128; i++ {
		xs = append(xs, []float64{rng.Float64()*2 - 1})
		ys = append(ys, []float64{rng.NormFloat64()})
	}
	norm := func(l2 float64) float64 {
		n := NewNet(17, 1, 16, 1)
		tr := Trainer{LR: 0.01, L2: l2, Epochs: 100, Seed: 6}
		tr.FitNet(n, xs, ys)
		var s float64
		for _, l := range n.Layers {
			for _, w := range l.W {
				s += w * w
			}
		}
		return s
	}
	weak, strong := norm(1e-6), norm(1e-2)
	if strong >= weak {
		t.Fatalf("L2 did not shrink weights: weak=%v strong=%v", weak, strong)
	}
}

func TestParamCount(t *testing.T) {
	n := NewNet(1, 4, 5, 2)
	// (4*5 + 5) + (5*2 + 2) = 25 + 12 = 37.
	if got := n.ParamCount(); got != 37 {
		t.Fatalf("ParamCount = %d, want 37", got)
	}
	tt := NewTwoTower(TwoTowerConfig{InA: 2, InB: 3, ProjDim: 4,
		Hidden: []int{5}, Out: 1, Seed: 1})
	// projA: 2*4+4=12, projB: 3*4+4=16, trunk: 8*5+5=45, 5*1+1=6 -> 79.
	if got := tt.ParamCount(); got != 79 {
		t.Fatalf("TwoTower ParamCount = %d, want 79", got)
	}
}

func TestMSEGrad(t *testing.T) {
	grad := make([]float64, 2)
	loss := MSEGrad([]float64{1, 3}, []float64{0, 1}, grad)
	// ((1)^2 + (2)^2)/2 ... careful: loss = sum(d^2)*inv where inv=1/2,
	// then *inv again at return: implementation returns mean of squares.
	if math.Abs(loss-2.5) > 1e-12 {
		t.Fatalf("loss = %v, want 2.5", loss)
	}
	if math.Abs(grad[0]-1) > 1e-12 || math.Abs(grad[1]-2) > 1e-12 {
		t.Fatalf("grad = %v, want [1 2]", grad)
	}
}

func TestFitEmptyInputs(t *testing.T) {
	n := NewNet(1, 2, 1)
	if losses := (Trainer{}).FitNet(n, nil, nil); losses != nil {
		t.Fatal("empty fit should return nil")
	}
}
