package nn

import (
	"fmt"
	"math/rand"
)

// Trainer holds the supervised training recipe from Sec. 4 of the paper:
// MSE loss, SGD with momentum 0.9, L2 regularization, batch size 64, up
// to 400 epochs (the paper observes convergence within 100).
type Trainer struct {
	LR       float64 // learning rate; defaults to 0.01
	Momentum float64 // defaults to 0.9
	L2       float64 // weight decay; defaults to 1e-4
	Epochs   int     // max epochs; defaults to 400
	Batch    int     // minibatch size; defaults to 64
	Seed     int64   // shuffle seed

	// Early stopping: training ends once the epoch loss fails to improve
	// by at least Tol for Patience consecutive epochs. Patience 0 disables
	// early stopping.
	Tol      float64
	Patience int
}

func (t *Trainer) applyDefaults() {
	if t.LR == 0 {
		t.LR = 0.01
	}
	if t.Momentum == 0 {
		t.Momentum = 0.9
	}
	if t.L2 == 0 {
		t.L2 = 1e-4
	}
	if t.Epochs == 0 {
		t.Epochs = 400
	}
	if t.Batch == 0 {
		t.Batch = 64
	}
}

// FitNet trains a plain MLP on (xs, ys) pairs and returns the per-epoch
// mean losses.
func (tr Trainer) FitNet(n *Net, xs, ys [][]float64) []float64 {
	tr.applyDefaults()
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("nn: %d inputs vs %d targets", len(xs), len(ys)))
	}
	if len(xs) == 0 {
		return nil
	}
	forward := func(i int, grad []float64) float64 {
		pred := n.Forward(xs[i])
		loss := MSEGrad(pred, ys[i], grad)
		n.Backward(grad)
		return loss
	}
	return tr.run(len(xs), len(ys[0]), forward, n.Step)
}

// FitTwoTower trains a TwoTower model on (as, bs, ys) triples and returns
// the per-epoch mean losses.
func (tr Trainer) FitTwoTower(t *TwoTower, as, bs, ys [][]float64) []float64 {
	tr.applyDefaults()
	if len(as) != len(bs) || len(as) != len(ys) {
		panic(fmt.Sprintf("nn: sample count mismatch %d/%d/%d", len(as), len(bs), len(ys)))
	}
	if len(as) == 0 {
		return nil
	}
	forward := func(i int, grad []float64) float64 {
		pred := t.Forward(as[i], bs[i])
		loss := MSEGrad(pred, ys[i], grad)
		t.Backward(grad)
		return loss
	}
	return tr.run(len(as), len(ys[0]), forward, t.Step)
}

// run is the shared epoch/minibatch loop. forward processes one sample
// (accumulating gradients) and returns its loss; step applies the update.
func (tr Trainer) run(n, outDim int,
	forward func(i int, grad []float64) float64,
	step func(lr, momentum, l2 float64, batch int)) []float64 {

	rng := rand.New(rand.NewSource(tr.Seed))
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	grad := make([]float64, outDim)

	var losses []float64
	best := -1.0
	stale := 0
	for epoch := 0; epoch < tr.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		for start := 0; start < n; start += tr.Batch {
			end := start + tr.Batch
			if end > n {
				end = n
			}
			for _, i := range idx[start:end] {
				epochLoss += forward(i, grad)
			}
			step(tr.LR, tr.Momentum, tr.L2, end-start)
		}
		epochLoss /= float64(n)
		losses = append(losses, epochLoss)

		if tr.Patience > 0 {
			if best < 0 || epochLoss < best-tr.Tol {
				best = epochLoss
				stale = 0
			} else {
				stale++
				if stale >= tr.Patience {
					break
				}
			}
		}
	}
	return losses
}
