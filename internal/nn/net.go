package nn

import (
	"fmt"
	"math/rand"
)

// Net is a plain multilayer perceptron: dense layers with ReLU on all but
// the last.
type Net struct {
	Layers []*Dense
}

// NewNet builds an MLP with the given layer sizes (sizes[0] is the input
// dimension, sizes[len-1] the output dimension). All hidden layers use
// ReLU; the output layer is linear.
func NewNet(seed int64, sizes ...int) *Net {
	if len(sizes) < 2 {
		panic("nn: need at least input and output sizes")
	}
	rng := rand.New(rand.NewSource(seed))
	n := &Net{}
	for i := 0; i+1 < len(sizes); i++ {
		relu := i+2 < len(sizes)
		n.Layers = append(n.Layers, NewDense(sizes[i], sizes[i+1], relu, rng))
	}
	return n
}

// Forward runs the network. The returned slice is owned by the last layer.
func (n *Net) Forward(x []float64) []float64 {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates an output gradient through all layers, accumulating
// parameter gradients, and returns the input gradient.
func (n *Net) Backward(gout []float64) []float64 {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		gout = n.Layers[i].Backward(gout)
	}
	return gout
}

// Step applies the optimizer update to every layer.
func (n *Net) Step(lr, momentum, l2 float64, batch int) {
	for _, l := range n.Layers {
		l.Step(lr, momentum, l2, batch)
	}
}

// ParamCount returns the total number of trainable parameters.
func (n *Net) ParamCount() int {
	total := 0
	for _, l := range n.Layers {
		total += l.ParamCount()
	}
	return total
}

// MSEGrad computes the mean-squared-error loss between pred and target
// and writes dLoss/dPred into grad (which must have the same length).
// The loss is averaged over output dimensions.
func MSEGrad(pred, target, grad []float64) float64 {
	if len(pred) != len(target) || len(pred) != len(grad) {
		panic(fmt.Sprintf("nn: MSE size mismatch %d/%d/%d", len(pred), len(target), len(grad)))
	}
	var loss float64
	inv := 1.0 / float64(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		loss += d * d
		grad[i] = 2 * d * inv
	}
	return loss * inv
}

// TwoTower is the paper's accuracy-predictor architecture (Sec. 4): the
// light-weight feature vector and the content-feature vector are each
// projected by a fully connected layer into ProjDim-sized vectors, the two
// projections are concatenated, and a trunk MLP maps the concatenation to
// one output per execution branch.
type TwoTower struct {
	ProjA *Dense // light-weight feature projection
	ProjB *Dense // content feature projection
	Trunk *Net

	concat []float64
}

// TwoTowerConfig sizes a TwoTower network.
type TwoTowerConfig struct {
	InA, InB int   // input dims of the two towers
	ProjDim  int   // projection width (paper: 256)
	Hidden   []int // trunk hidden layer widths (paper: 256 x 4 for a 6-layer net)
	Out      int   // number of execution branches M
	Seed     int64
}

// NewTwoTower builds the two-tower network.
func NewTwoTower(cfg TwoTowerConfig) *TwoTower {
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &TwoTower{
		ProjA: NewDense(cfg.InA, cfg.ProjDim, false, rng),
		ProjB: NewDense(cfg.InB, cfg.ProjDim, false, rng),
	}
	sizes := append([]int{2 * cfg.ProjDim}, cfg.Hidden...)
	sizes = append(sizes, cfg.Out)
	trunk := &Net{}
	for i := 0; i+1 < len(sizes); i++ {
		relu := i+2 < len(sizes)
		trunk.Layers = append(trunk.Layers, NewDense(sizes[i], sizes[i+1], relu, rng))
	}
	t.Trunk = trunk
	t.concat = make([]float64, 2*cfg.ProjDim)
	return t
}

// Forward runs the two-tower network on the (light, content) input pair.
func (t *TwoTower) Forward(a, b []float64) []float64 {
	if len(t.concat) != t.ProjA.Out+t.ProjB.Out {
		// Reallocated lazily so gob-decoded models work.
		t.concat = make([]float64, t.ProjA.Out+t.ProjB.Out)
	}
	pa := t.ProjA.Forward(a)
	pb := t.ProjB.Forward(b)
	copy(t.concat, pa)
	copy(t.concat[len(pa):], pb)
	return t.Trunk.Forward(t.concat)
}

// Backward propagates the output gradient and accumulates parameter
// gradients in both towers and the trunk.
func (t *TwoTower) Backward(gout []float64) {
	gconcat := t.Trunk.Backward(gout)
	na := t.ProjA.Out
	t.ProjA.Backward(gconcat[:na])
	t.ProjB.Backward(gconcat[na:])
}

// Step applies the optimizer update everywhere.
func (t *TwoTower) Step(lr, momentum, l2 float64, batch int) {
	t.ProjA.Step(lr, momentum, l2, batch)
	t.ProjB.Step(lr, momentum, l2, batch)
	t.Trunk.Step(lr, momentum, l2, batch)
}

// ParamCount returns the total number of trainable parameters.
func (t *TwoTower) ParamCount() int {
	return t.ProjA.ParamCount() + t.ProjB.ParamCount() + t.Trunk.ParamCount()
}
