// Package nn is a small from-scratch neural-network library implementing
// exactly what the paper's accuracy prediction model needs (Sec. 4): dense
// layers with ReLU activations, a two-tower input projection (light-weight
// and content features projected to a common width and concatenated), MSE
// loss, SGD with momentum 0.9, and L2 regularization.
//
// It is intentionally minimal: float64 math, single-threaded, fully
// deterministic given a seed.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is one fully connected layer with an optional ReLU activation.
// Gradients accumulate across Backward calls until Step is invoked, which
// applies one SGD-with-momentum update and clears them.
type Dense struct {
	In, Out int
	ReLU    bool

	W []float64 // Out x In, row-major
	B []float64 // Out

	gw, gb []float64 // accumulated gradients
	vw, vb []float64 // momentum buffers

	x      []float64 // last input (for backward)
	preact []float64 // last pre-activation (for ReLU backward)
	out    []float64 // last output buffer
	gx     []float64 // input-gradient buffer
}

// NewDense creates a layer with He-style initialization scaled for the
// fan-in, using the provided RNG.
func NewDense(in, out int, relu bool, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid dense shape %dx%d", in, out))
	}
	d := &Dense{
		In: in, Out: out, ReLU: relu,
		W:  make([]float64, in*out),
		B:  make([]float64, out),
		gw: make([]float64, in*out),
		gb: make([]float64, out),
		vw: make([]float64, in*out),
		vb: make([]float64, out),

		preact: make([]float64, out),
		out:    make([]float64, out),
		gx:     make([]float64, in),
	}
	scale := math.Sqrt(2.0 / float64(in))
	for i := range d.W {
		d.W[i] = rng.NormFloat64() * scale
	}
	return d
}

// ensureBuffers allocates the non-persistent working buffers. Layers
// reconstructed by gob decoding carry only the exported fields, so the
// buffers are created lazily here.
func (d *Dense) ensureBuffers() {
	if d.out == nil {
		d.preact = make([]float64, d.Out)
		d.out = make([]float64, d.Out)
		d.gx = make([]float64, d.In)
		d.gw = make([]float64, d.In*d.Out)
		d.gb = make([]float64, d.Out)
		d.vw = make([]float64, d.In*d.Out)
		d.vb = make([]float64, d.Out)
	}
}

// Forward computes the layer output for input x. The returned slice is
// owned by the layer and overwritten on the next call.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: dense forward got %d inputs, want %d", len(x), d.In))
	}
	d.ensureBuffers()
	d.x = x
	for o := 0; o < d.Out; o++ {
		sum := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		d.preact[o] = sum
		if d.ReLU && sum < 0 {
			sum = 0
		}
		d.out[o] = sum
	}
	return d.out
}

// Backward takes the gradient of the loss w.r.t. the layer output,
// accumulates parameter gradients, and returns the gradient w.r.t. the
// layer input. Must follow a Forward call.
func (d *Dense) Backward(gout []float64) []float64 {
	if len(gout) != d.Out {
		panic(fmt.Sprintf("nn: dense backward got %d grads, want %d", len(gout), d.Out))
	}
	for i := range d.gx {
		d.gx[i] = 0
	}
	for o := 0; o < d.Out; o++ {
		g := gout[o]
		if d.ReLU && d.preact[o] <= 0 {
			continue
		}
		d.gb[o] += g
		row := d.W[o*d.In : (o+1)*d.In]
		grow := d.gw[o*d.In : (o+1)*d.In]
		for i, xi := range d.x {
			grow[i] += g * xi
			d.gx[i] += g * row[i]
		}
	}
	return d.gx
}

// Step applies one SGD-with-momentum update using the gradients
// accumulated over batch samples, with L2 weight decay, then clears the
// accumulated gradients.
func (d *Dense) Step(lr, momentum, l2 float64, batch int) {
	if batch <= 0 {
		batch = 1
	}
	inv := 1.0 / float64(batch)
	for i := range d.W {
		g := d.gw[i]*inv + l2*d.W[i]
		d.vw[i] = momentum*d.vw[i] - lr*g
		d.W[i] += d.vw[i]
		d.gw[i] = 0
	}
	for i := range d.B {
		g := d.gb[i] * inv // no decay on biases
		d.vb[i] = momentum*d.vb[i] - lr*g
		d.B[i] += d.vb[i]
		d.gb[i] = 0
	}
}

// ParamCount returns the number of trainable parameters.
func (d *Dense) ParamCount() int { return len(d.W) + len(d.B) }
