package harness

import (
	"strings"
	"testing"

	"litereconfig/internal/contend"
	"litereconfig/internal/detect"
	"litereconfig/internal/mbek"
	"litereconfig/internal/metric"
	"litereconfig/internal/simlat"
	"litereconfig/internal/track"
	"litereconfig/internal/vid"
)

// staticDecider always chooses the same branch.
type staticDecider struct{ b mbek.Branch }

func (d staticDecider) Decide(*mbek.Kernel, *simlat.Clock, *vid.Video, vid.Frame) mbek.Branch {
	return d.b
}

// toyProtocol runs the kernel loop with a fixed branch.
type toyProtocol struct{ b mbek.Branch }

func (p toyProtocol) Name() string { return "toy" }

func (p toyProtocol) Run(videos []*vid.Video, clock *simlat.Clock, cg contend.Generator) *Result {
	res := &Result{}
	k := mbek.NewKernel(detect.FasterRCNN, clock)
	RunKernelLoop(k, staticDecider{p.b}, videos, clock, cg, res)
	return res
}

func videos(n int) []*vid.Video {
	vs := make([]*vid.Video, n)
	for i := range vs {
		vs[i] = vid.Generate("v", int64(i)+200, vid.GenConfig{Frames: 50})
	}
	return vs
}

func TestRunKernelLoopSampleCounts(t *testing.T) {
	b := mbek.Branch{Shape: 320, NProp: 5, Tracker: track.KCF, GoF: 4, DS: 1}
	vs := videos(3)
	r := Evaluate(toyProtocol{b}, vs, simlat.TX2, 50, contend.Fixed{}, 1)
	total := 0
	for _, v := range vs {
		total += v.Len()
	}
	if len(r.Frames) != total {
		t.Fatalf("frame results = %d, want %d", len(r.Frames), total)
	}
	if r.Latency.Count() != total {
		t.Fatalf("latency samples = %d, want %d", r.Latency.Count(), total)
	}
	if r.Breakdown.Frames() != total {
		t.Fatalf("breakdown frames = %d, want %d", r.Breakdown.Frames(), total)
	}
	if r.Protocol != "toy" || r.Device.Name != "tx2" || r.SLO != 50 {
		t.Fatalf("metadata wrong: %+v", r)
	}
	if r.BranchCoverage != 1 {
		t.Fatalf("coverage = %d", r.BranchCoverage)
	}
	if r.MAP() <= 0 {
		t.Fatal("mAP should be positive")
	}
}

func TestGoFAveragedLatency(t *testing.T) {
	// With GoF 4, groups of 4 consecutive samples share one value.
	b := mbek.Branch{Shape: 448, NProp: 20, Tracker: track.KCF, GoF: 4, DS: 1}
	v := vid.Generate("v", 5, vid.GenConfig{Frames: 16})
	clock := simlat.NewClock(simlat.TX2, 1)
	res := &Result{}
	k := mbek.NewKernel(detect.FasterRCNN, clock)
	RunKernelLoop(k, staticDecider{b}, []*vid.Video{v}, clock, contend.Fixed{}, res)
	// The detector frame is far more expensive than tracker frames, so
	// without averaging sample variance would be huge; averaged samples
	// per GoF must be identical in groups of 4.
	all := make([]float64, 0, 16)
	for i := 0; i < 16; i++ {
		all = append(all, res.Latency.Percentile(float64(i+1)*100/16))
	}
	// Direct check via violation counts: exactly 4 distinct values.
	distinct := map[float64]bool{}
	var series []float64
	for p := 1; p <= 100; p++ {
		series = append(series, res.Latency.Percentile(float64(p)))
	}
	for _, v := range series {
		distinct[v] = true
	}
	if len(distinct) != 4 {
		t.Fatalf("expected 4 distinct GoF-averaged values, got %d", len(distinct))
	}
	_ = all
}

func TestResultSummaryAndSLO(t *testing.T) {
	r := &Result{Protocol: "x", SLO: 30}
	r.Latency.Add(10)
	r.Latency.Add(20)
	if !r.MeetsSLO() {
		t.Fatal("should meet SLO")
	}
	if !strings.Contains(r.Summary(), "mAP") {
		t.Fatalf("summary = %q", r.Summary())
	}
	r.Latency.Add(100)
	if r.MeetsSLO() {
		t.Fatal("should violate SLO")
	}
	if !strings.Contains(r.Summary(), "[F]") {
		t.Fatalf("violating summary should carry [F]: %q", r.Summary())
	}
	oom := &Result{Protocol: "big", OOM: true}
	if oom.MeetsSLO() {
		t.Fatal("OOM never meets SLO")
	}
	if !strings.Contains(oom.Summary(), "OOM") {
		t.Fatalf("OOM summary = %q", oom.Summary())
	}
}

func TestContentionFlowsThroughLoop(t *testing.T) {
	b := mbek.Branch{Shape: 448, NProp: 20, Tracker: track.KCF, GoF: 4, DS: 1}
	vs := videos(2)
	r0 := Evaluate(toyProtocol{b}, vs, simlat.TX2, 0, contend.Fixed{G: 0}, 1)
	r50 := Evaluate(toyProtocol{b}, vs, simlat.TX2, 0, contend.Fixed{G: 0.5}, 1)
	if r50.Latency.Mean() <= r0.Latency.Mean()*1.15 {
		t.Fatalf("contention did not slow the loop: %.2f -> %.2f",
			r0.Latency.Mean(), r50.Latency.Mean())
	}
}

func TestFrameResultsMatchTruth(t *testing.T) {
	b := mbek.Branch{Shape: 576, NProp: 100, Tracker: track.CSRT, GoF: 2, DS: 1}
	v := vid.Generate("v", 9, vid.GenConfig{Frames: 20})
	r := Evaluate(toyProtocol{b}, []*vid.Video{v}, simlat.TX2, 0, contend.Fixed{}, 1)
	for i, fr := range r.Frames {
		if len(fr.Truth) != len(v.Frames[i].Objects) {
			t.Fatalf("frame %d truth mismatch", i)
		}
	}
	_ = metric.FrameResult{}
}

func TestStepperGoFGranularity(t *testing.T) {
	b := mbek.Branch{Shape: 320, NProp: 5, Tracker: track.KCF, GoF: 4, DS: 1}
	vs := videos(2) // 2 x 50 frames
	clock := simlat.NewClock(simlat.TX2, 1)
	k := mbek.NewKernel(detect.FasterRCNN, clock)
	res := &Result{}
	s := NewStepper(k, staticDecider{b}, vs, clock, contend.Fixed{}, res)
	steps := 0
	for s.Step() {
		steps++
		if got := s.Frames(); got != steps*b.GoF && got != len(res.Frames) {
			t.Fatalf("after step %d: frames = %d", steps, got)
		}
	}
	s.Finish()
	// 50 frames per video at GoF 4 = 13 steps each (last GoF truncated);
	// GoFs never span video boundaries.
	if steps != 26 {
		t.Fatalf("steps = %d, want 26", steps)
	}
	if !s.Done() {
		t.Fatal("stepper should be done")
	}
	if res.Latency.Count() != 100 || len(res.Frames) != 100 {
		t.Fatalf("samples = %d, frames = %d", res.Latency.Count(), len(res.Frames))
	}
	if res.Breakdown.Frames() != 100 {
		t.Fatalf("breakdown frames = %d", res.Breakdown.Frames())
	}
	s.Finish() // idempotent
	if res.Breakdown.Frames() != 100 {
		t.Fatal("Finish must be idempotent")
	}
}

func TestStepperMatchesRunKernelLoop(t *testing.T) {
	b := mbek.Branch{Shape: 224, NProp: 5, Tracker: track.MedianFlow, GoF: 8, DS: 1}
	vs := videos(3)
	loopRes := &Result{}
	loopClock := simlat.NewClock(simlat.TX2, 7)
	RunKernelLoop(mbek.NewKernel(detect.FasterRCNN, loopClock), staticDecider{b},
		vs, loopClock, &contend.Walk{Seed: 5}, loopRes)

	stepRes := &Result{}
	stepClock := simlat.NewClock(simlat.TX2, 7)
	s := NewStepper(mbek.NewKernel(detect.FasterRCNN, stepClock), staticDecider{b},
		vs, stepClock, &contend.Walk{Seed: 5}, stepRes)
	for s.Step() {
	}
	s.Finish()

	if loopClock.Now() != stepClock.Now() {
		t.Fatalf("clocks diverged: %.4f vs %.4f", loopClock.Now(), stepClock.Now())
	}
	if loopRes.Latency.Count() != stepRes.Latency.Count() {
		t.Fatal("sample counts diverged")
	}
	a, c := loopRes.Latency.Samples(), stepRes.Latency.Samples()
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("sample %d diverged: %v vs %v", i, a[i], c[i])
		}
	}
	if loopRes.MAP() != stepRes.MAP() {
		t.Fatal("mAP diverged")
	}
}
