// Package harness runs protocols (LiteReconfig variants and baselines)
// over the validation corpus and collects the paper's metrics: mAP on the
// processed frames, mean and P95 per-frame latency (averaged per GoF, as
// in Sec. 5.2), SLO violation rates, per-component latency breakdowns
// (Figure 3), branch coverage (Figure 4) and the online switch log
// (Figure 5b).
package harness

import (
	"fmt"

	"litereconfig/internal/contend"
	"litereconfig/internal/feat"
	"litereconfig/internal/mbek"
	"litereconfig/internal/metric"
	"litereconfig/internal/simlat"
	"litereconfig/internal/vid"
)

// Protocol is anything that can process the corpus on a simulated device.
// Implementations charge all work to the clock and fill a Result.
type Protocol interface {
	// Name identifies the protocol in tables.
	Name() string
	// Run processes the videos in order on the given clock, with the
	// contention generator driving the GPU contention level per frame.
	Run(videos []*vid.Video, clock *simlat.Clock, cg contend.Generator) *Result
}

// Result is the outcome of one protocol evaluation.
type Result struct {
	Protocol string
	Device   simlat.Device
	SLO      float64 // 0 means "no SLO" (Table 3 regime)

	Frames  []metric.FrameResult
	Latency metric.LatencySeries

	Breakdown      *metric.Breakdown
	BranchCoverage int
	Switches       int
	SwitchLog      []mbek.SwitchEvent
	FeatureUse     map[feat.Kind]int

	// OOM marks a protocol that could not load on the device (Table 3).
	OOM bool
	// MemoryGB is the protocol's resident working set.
	MemoryGB float64
}

// MAP returns the mean average precision over all processed frames.
func (r *Result) MAP() float64 {
	return metric.MeanAP(r.Frames, metric.DefaultIoU)
}

// MeetsSLO reports whether the P95 per-frame latency is within the SLO.
func (r *Result) MeetsSLO() bool {
	if r.OOM {
		return false
	}
	return r.Latency.MeetsSLO(r.SLO)
}

// Summary renders the row the paper's tables report.
func (r *Result) Summary() string {
	if r.OOM {
		return fmt.Sprintf("%-36s OOM", r.Protocol)
	}
	mark := ""
	if r.SLO > 0 && !r.MeetsSLO() {
		mark = " [F]"
	}
	return fmt.Sprintf("%-36s mAP=%5.1f%%  mean=%6.1fms  p95=%6.1fms%s",
		r.Protocol, r.MAP()*100, r.Latency.Mean(), r.Latency.P95(), mark)
}

// Evaluate runs one protocol over the corpus on a fresh clock.
func Evaluate(p Protocol, videos []*vid.Video, dev simlat.Device, slo float64,
	cg contend.Generator, seed int64) *Result {
	clock := simlat.NewClock(dev, seed)
	r := p.Run(videos, clock, cg)
	r.Protocol = p.Name()
	r.Device = dev
	r.SLO = slo
	if r.Breakdown == nil {
		r.Breakdown = clock.Breakdown()
	}
	return r
}

// Decider chooses the branch for the GoF starting at frame f; it may
// charge scheduler work to the clock.
type Decider interface {
	Decide(k *mbek.Kernel, clock *simlat.Clock, v *vid.Video, f vid.Frame) mbek.Branch
}

// RunKernelLoop is the shared streaming loop for MBEK-based protocols:
// per frame it updates contention, consults the decider at GoF
// boundaries, executes the kernel, and samples the GoF-averaged per-frame
// latency into the result.
func RunKernelLoop(k *mbek.Kernel, d Decider, videos []*vid.Video,
	clock *simlat.Clock, cg contend.Generator, res *Result) {

	globalFrame := 0
	for _, v := range videos {
		k.Start(v)
		gofStart := clock.Now()
		gofFrames := 0
		flush := func() {
			if gofFrames == 0 {
				return
			}
			avg := (clock.Now() - gofStart) / float64(gofFrames)
			for i := 0; i < gofFrames; i++ {
				res.Latency.Add(avg)
			}
			gofStart = clock.Now()
			gofFrames = 0
		}
		for _, f := range v.Frames {
			clock.SetContention(cg.Level(globalFrame))
			if k.AtGoFBoundary() {
				flush()
				b := d.Decide(k, clock, v, f)
				k.SetBranch(b, globalFrame)
			}
			dets := k.ProcessFrame(f)
			res.Frames = append(res.Frames, metric.FrameResult{
				Truth: f.Objects, Dets: dets,
			})
			gofFrames++
			globalFrame++
		}
		flush()
	}
	res.BranchCoverage = k.BranchCoverage()
	res.Switches = k.Switches()
	res.SwitchLog = k.SwitchLog()
	res.Breakdown = clock.Breakdown()
	res.Breakdown.AddFrames(globalFrame)
}
