// Package harness runs protocols (LiteReconfig variants and baselines)
// over the validation corpus and collects the paper's metrics: mAP on the
// processed frames, mean and P95 per-frame latency (averaged per GoF, as
// in Sec. 5.2), SLO violation rates, per-component latency breakdowns
// (Figure 3), branch coverage (Figure 4) and the online switch log
// (Figure 5b).
package harness

import (
	"fmt"

	"litereconfig/internal/contend"
	"litereconfig/internal/fault"
	"litereconfig/internal/feat"
	"litereconfig/internal/mbek"
	"litereconfig/internal/metric"
	"litereconfig/internal/obs"
	"litereconfig/internal/simlat"
	"litereconfig/internal/vid"
)

// Protocol is anything that can process the corpus on a simulated device.
// Implementations charge all work to the clock and fill a Result.
type Protocol interface {
	// Name identifies the protocol in tables.
	Name() string
	// Run processes the videos in order on the given clock, with the
	// contention generator driving the GPU contention level per frame.
	Run(videos []*vid.Video, clock *simlat.Clock, cg contend.Generator) *Result
}

// Result is the outcome of one protocol evaluation.
type Result struct {
	Protocol string
	Device   simlat.Device
	SLO      float64 // 0 means "no SLO" (Table 3 regime)

	Frames  []metric.FrameResult
	Latency metric.LatencySeries

	Breakdown      *metric.Breakdown
	BranchCoverage int
	Switches       int
	SwitchLog      []mbek.SwitchEvent
	FeatureUse     map[feat.Kind]int

	// OOM marks a protocol that could not load on the device (Table 3).
	OOM bool
	// MemoryGB is the protocol's resident working set.
	MemoryGB float64
}

// MAP returns the mean average precision over all processed frames.
func (r *Result) MAP() float64 {
	return metric.MeanAP(r.Frames, metric.DefaultIoU)
}

// MeetsSLO reports whether the P95 per-frame latency is within the SLO.
func (r *Result) MeetsSLO() bool {
	if r.OOM {
		return false
	}
	return r.Latency.MeetsSLO(r.SLO)
}

// Summary renders the row the paper's tables report.
func (r *Result) Summary() string {
	if r.OOM {
		return fmt.Sprintf("%-36s OOM", r.Protocol)
	}
	mark := ""
	if r.SLO > 0 && !r.MeetsSLO() {
		mark = " [F]"
	}
	return fmt.Sprintf("%-36s mAP=%5.1f%%  mean=%6.1fms  p95=%6.1fms%s",
		r.Protocol, r.MAP()*100, r.Latency.Mean(), r.Latency.P95(), mark)
}

// Evaluate runs one protocol over the corpus on a fresh clock.
func Evaluate(p Protocol, videos []*vid.Video, dev simlat.Device, slo float64,
	cg contend.Generator, seed int64) *Result {
	clock := simlat.NewClock(dev, seed)
	r := p.Run(videos, clock, cg)
	r.Protocol = p.Name()
	r.Device = dev
	r.SLO = slo
	if r.Breakdown == nil {
		r.Breakdown = clock.Breakdown()
	}
	return r
}

// Decider chooses the branch for the GoF starting at frame f; it may
// charge scheduler work to the clock.
type Decider interface {
	Decide(k *mbek.Kernel, clock *simlat.Clock, v *vid.Video, f vid.Frame) mbek.Branch
}

// GoFFeedback is an optional Decider extension: the stepper reports the
// realized outcome of every completed Group-of-Frames (frame count and
// GoF-averaged per-frame latency) back to a decider that implements it.
// The LiteReconfig scheduler uses it for its latency-budget watchdog.
type GoFFeedback interface {
	ObserveGoF(frames int, avgMS float64)
}

// GoFOutcome is the full realized result of one completed
// Group-of-Frames, assembled at the flush barrier for deciders that
// adapt their models online.
type GoFOutcome struct {
	// Frames and AvgMS mirror GoFFeedback: executed frame count and the
	// GoF-averaged realized per-frame latency.
	Frames int
	AvgMS  float64
	// MeanAP is the GoF's realized detection accuracy against ground
	// truth; HasAcc marks it valid.
	MeanAP float64
	HasAcc bool
	// DetBaseMS and TrkBaseMS are the GoF's total detector and tracker
	// cost in base units (TX2, zero contention) — deltas of the kernel's
	// cumulative base-cost counters across the GoF. They are exact, so
	// an adapter can refit per-frame base-cost models without undoing
	// device scaling, contention, or drift. TrkBaseMS is zero for a
	// detect-every-frame GoF.
	DetBaseMS float64
	TrkBaseMS float64
}

// OutcomeFeedback is an optional Decider extension for online model
// adaptation: at every GoF flush the stepper delivers the realized
// outcome — latency, accuracy and kernel observations — to a decider
// that implements it. AdaptActive gates the extra accounting (per-GoF
// mAP scoring); a decider with adaptation switched off returns false
// and the stepper skips the work entirely.
type OutcomeFeedback interface {
	AdaptActive() bool
	ObserveGoFOutcome(GoFOutcome)
}

// SwitchFeedback is an optional Decider extension: the stepper reports
// every realized branch-switch cost (the milliseconds the kernel
// actually charged, cold misses included) so an adaptive decider can
// refresh its observed C(b0, b) table.
type SwitchFeedback interface {
	ObserveSwitch(from, to mbek.Branch, costMS float64)
}

// RunKernelLoop is the shared streaming loop for MBEK-based protocols:
// per frame it updates contention, consults the decider at GoF
// boundaries, executes the kernel, and samples the GoF-averaged per-frame
// latency into the result.
func RunKernelLoop(k *mbek.Kernel, d Decider, videos []*vid.Video,
	clock *simlat.Clock, cg contend.Generator, res *Result) {

	s := NewStepper(k, d, videos, clock, cg, res)
	for s.Step() {
	}
	s.Finish()
}

// Stepper advances a kernel-based protocol one Group-of-Frames at a
// time, accumulating the same Result as RunKernelLoop. The serving
// engine uses it to interleave many streams on one board: between Step
// calls the caller may inspect the clock (occupancy, simulated time) and
// change the contention the generator will report next.
type Stepper struct {
	k      *mbek.Kernel
	d      Decider
	clock  *simlat.Clock
	cg     contend.Generator
	res    *Result
	videos []*vid.Video

	vi, fi      int // current video / next frame within it
	globalFrame int
	gofStart    float64
	gofFrames   int
	gofs        int // completed GoF windows (checkpoint consistency unit)
	finished    bool

	// inj is the stream's fault injector (nil = no faults): boundary
	// latency faults (spikes, stalls) are charged to the clock right
	// after the decision record opens, so they land in the new GoF's
	// latency window and the watchdog sees the overrun.
	inj *fault.Injector
	// fb is the decider's optional GoF feedback hook, resolved once;
	// ofb and sfb are the adaptation extensions (outcome and switch-cost
	// feedback). gofFrameStart indexes the first result frame of the
	// open GoF window so the flush can score just that GoF's accuracy.
	fb            GoFFeedback
	ofb           OutcomeFeedback
	sfb           SwitchFeedback
	gofFrameStart int
	// detBase0/trkBase0 snapshot the kernel's cumulative base-cost
	// counters at the open GoF's start; flush diffs them for the
	// outcome's exact base-unit GoF cost.
	detBase0, trkBase0 float64

	// Observability (all nil when unobserved): the stream view records
	// one Decision per GoF boundary — opened before the decider runs,
	// closed with the realized GoF latency at the next flush — and the
	// cached metric handles keep the registry off the hot path.
	so         *obs.StreamObserver
	gofLatHist *obs.Histogram
	framesCtr  *obs.Counter
	gofsCtr    *obs.Counter
}

// SetObserver attaches an observability view to the stepper. Call before
// the first Step. Recording is passive (no clock or RNG interaction), so
// observed and unobserved runs take identical scheduling decisions.
func (s *Stepper) SetObserver(so *obs.StreamObserver) {
	s.so = so
	if r := so.Registry(); r != nil {
		s.gofLatHist = r.Histogram("harness_gof_frame_latency_ms", obs.DefaultLatencyBuckets)
		s.framesCtr = r.Counter("harness_frames_total")
		s.gofsCtr = r.Counter("harness_gofs_total")
	}
}

// NewStepper prepares a stepwise run of the decider-driven kernel loop
// over the videos. The result is filled incrementally by Step and
// finalized by Finish.
func NewStepper(k *mbek.Kernel, d Decider, videos []*vid.Video,
	clock *simlat.Clock, cg contend.Generator, res *Result) *Stepper {
	s := &Stepper{k: k, d: d, clock: clock, cg: cg, res: res,
		videos: videos, gofStart: clock.Now()}
	s.fb, _ = d.(GoFFeedback)
	s.ofb, _ = d.(OutcomeFeedback)
	s.sfb, _ = d.(SwitchFeedback)
	return s
}

// SetInjector attaches the stream's fault injector. Call before the
// first Step; a nil injector means no faults.
func (s *Stepper) SetInjector(inj *fault.Injector) { s.inj = inj }

// SetGenerator replaces the contention generator consulted before each
// frame. The serving engine calls it when a stream migrates to another
// board, whose coupling and fault environment differ. Steppers rest at
// GoF boundaries between Step calls, so the swap never lands mid-GoF.
func (s *Stepper) SetGenerator(cg contend.Generator) { s.cg = cg }

// Injector returns the attached fault injector (nil when unfaulted).
// The serving engine's worker reads it to fire scheduled panics.
func (s *Stepper) Injector() *fault.Injector { return s.inj }

// flush samples the GoF-averaged per-frame latency of the completed GoF
// (if any) and opens a new measurement window at the current clock time.
func (s *Stepper) flush() {
	if s.gofFrames > 0 {
		avg := (s.clock.Now() - s.gofStart) / float64(s.gofFrames)
		for i := 0; i < s.gofFrames; i++ {
			s.res.Latency.Add(avg)
		}
		if s.so != nil {
			s.so.EndGoF(s.gofFrames, avg)
			s.gofLatHist.Observe(avg)
			s.framesCtr.Add(float64(s.gofFrames))
			s.gofsCtr.Inc()
		}
		if s.fb != nil {
			s.fb.ObserveGoF(s.gofFrames, avg)
		}
		if s.ofb != nil && s.ofb.AdaptActive() {
			o := GoFOutcome{Frames: s.gofFrames, AvgMS: avg}
			if gof := s.res.Frames[s.gofFrameStart:]; len(gof) > 0 {
				o.MeanAP = metric.MeanAP(gof, metric.DefaultIoU)
				o.HasAcc = true
			}
			det, trk := s.k.BaseCostTotals()
			o.DetBaseMS = det - s.detBase0
			o.TrkBaseMS = trk - s.trkBase0
			s.ofb.ObserveGoFOutcome(o)
		}
		s.gofFrames = 0
		s.gofs++
	}
	s.gofStart = s.clock.Now()
	s.gofFrameStart = len(s.res.Frames)
	s.detBase0, s.trkBase0 = s.k.BaseCostTotals()
}

// Step runs the next Group-of-Frames: it advances to the next video if
// needed, sets the contention level, consults the decider once, and
// executes the kernel until the next GoF boundary or the end of the
// video. It reports false once the corpus is exhausted.
func (s *Stepper) Step() bool {
	if s.finished {
		return false
	}
	for s.vi < len(s.videos) && s.fi >= len(s.videos[s.vi].Frames) {
		s.flush()
		s.vi++
		s.fi = 0
	}
	if s.vi >= len(s.videos) {
		return false
	}
	v := s.videos[s.vi]
	if s.fi == 0 {
		s.k.Start(v)
	}
	// By construction the kernel sits at a GoF boundary here: close the
	// previous latency window, then decide. Decision and switch costs
	// fall into the new GoF's window, as in the paper's accounting.
	s.clock.SetContention(s.cg.Level(s.globalFrame))
	s.flush()
	if s.so != nil {
		s.so.BeginDecision(s.globalFrame, s.clock.Now())
	}
	if s.inj != nil {
		// Boundary latency faults (spikes, stalls) charge after the flush
		// so they fall into the new GoF's latency window — the watchdog
		// then sees the overrun they cause.
		if ms, events := s.inj.Boundary(s.globalFrame); ms > 0 {
			s.clock.ChargeExact("fault", ms)
			d := s.so.Pending()
			if d != nil {
				d.FaultMS = ms
			}
			r := s.so.Registry()
			for _, e := range events {
				if d != nil {
					d.FaultEvents = append(d.FaultEvents, e.String())
				}
				if r != nil {
					r.Counter(`fault_injected_total{class="` + e.Class.String() + `"}`).Inc()
				}
			}
		}
	}
	sw := s.k.Switches()
	prev, hadPrev := s.k.Branch(), s.k.HasBranch()
	b := s.d.Decide(s.k, s.clock, v, v.Frames[s.fi])
	cost := s.k.SetBranch(b, s.globalFrame)
	switched := s.k.Switches() > sw
	if s.sfb != nil && switched && hadPrev {
		s.sfb.ObserveSwitch(prev, b, cost)
	}
	if d := s.so.Pending(); d != nil {
		d.Branch = b.String()
		d.Switched = switched
		d.SwitchCostMS = cost
	}
	for {
		f := v.Frames[s.fi]
		s.clock.SetContention(s.cg.Level(s.globalFrame))
		dets := s.k.ProcessFrame(f)
		s.res.Frames = append(s.res.Frames, metric.FrameResult{
			Truth: f.Objects, Dets: dets,
		})
		s.gofFrames++
		s.globalFrame++
		s.fi++
		if s.fi >= len(v.Frames) || s.k.AtGoFBoundary() {
			return true
		}
	}
}

// Frames returns the number of frames processed so far.
func (s *Stepper) Frames() int { return s.globalFrame }

// GoFs returns the number of completed Group-of-Frames windows so far.
// GoF boundaries are the checkpoint consistency points: recovery
// replays whole GoFs, never partial ones.
func (s *Stepper) GoFs() int { return s.gofs }

// Resume fast-forwards a fresh stepper to a checkpointed position:
// globalFrame frames and gofs completed GoF windows are marked done
// without executing them, and the video/frame cursor is advanced to
// match. Call before the first Step, on a stepper whose clock has
// already been Restored to the checkpoint's simulated time. If the
// cursor lands mid-video the kernel is started on that video so the
// first Step does not restart it from frame zero — the restored stream
// pays a cold branch switch instead, modeling the detector reload a
// real recovery performs.
func (s *Stepper) Resume(globalFrame, gofs int) {
	if globalFrame <= 0 {
		return
	}
	s.globalFrame = globalFrame
	s.gofs = gofs
	rest := globalFrame
	for s.vi < len(s.videos) && rest >= len(s.videos[s.vi].Frames) {
		rest -= len(s.videos[s.vi].Frames)
		s.vi++
	}
	s.fi = rest
	if s.vi < len(s.videos) && s.fi > 0 {
		s.k.Start(s.videos[s.vi])
	}
	// Open a clean measurement window at the restored clock position:
	// the lost GoFs' latency samples died with the board, and the first
	// post-restore GoF must not be billed for pre-crash time.
	s.gofStart = s.clock.Now()
	s.gofFrameStart = len(s.res.Frames)
	s.detBase0, s.trkBase0 = s.k.BaseCostTotals()
}

// Done reports whether the corpus is exhausted.
func (s *Stepper) Done() bool {
	return s.finished ||
		(s.vi >= len(s.videos)-1 &&
			(s.vi >= len(s.videos) || s.fi >= len(s.videos[s.vi].Frames)))
}

// Finish flushes the trailing GoF and finalizes the result (branch
// coverage, switch log, per-component breakdown). It is idempotent; no
// Step calls are allowed after it.
func (s *Stepper) Finish() {
	if s.finished {
		return
	}
	s.finished = true
	s.flush()
	s.res.BranchCoverage = s.k.BranchCoverage()
	s.res.Switches = s.k.Switches()
	s.res.SwitchLog = s.k.SwitchLog()
	s.res.Breakdown = s.clock.Breakdown()
	s.res.Breakdown.AddFrames(s.globalFrame)
	if s.so != nil {
		s.so.Close()
		if r := s.so.Registry(); r != nil {
			for _, c := range s.res.Breakdown.Components() {
				r.Counter(`harness_component_ms_total{component="` + c + `"}`).
					Add(s.res.Breakdown.Total(c))
			}
		}
	}
}
