// Package track implements the parametric object trackers of the MBEK:
// MedianFlow, KCF, CSRT and dense Optical Flow — the four tracker types
// LiteReconfig inherits from ApproxDet (Sec. 4).
//
// A tracker is initialized from the detector's output on the first frame
// of a Group-of-Frames and then propagates each box across the remaining
// frames. The simulation models the behaviours the scheduler cares about:
// per-frame drift that grows with object speed, tracker failure
// probability, downsampling (ds) trading cost for drift, and per-object
// per-frame cost. Calibration preserves the classic ordering: CSRT is
// accurate but slow, KCF is the balanced default, MedianFlow is cheap and
// fragile, dense optical flow sits in between.
package track

import (
	"math"
	"math/rand"

	"litereconfig/internal/geom"
	"litereconfig/internal/metric"
	"litereconfig/internal/vid"
)

// Kind identifies a tracker algorithm.
type Kind int

// The four tracker types of the MBEK.
const (
	MedianFlow Kind = iota
	KCF
	CSRT
	OptFlow

	// NumKinds is the number of tracker types.
	NumKinds int = iota
)

var kindNames = [NumKinds]string{"medianflow", "kcf", "csrt", "optflow"}

// String returns the canonical tracker name.
func (k Kind) String() string {
	if k < 0 || int(k) >= NumKinds {
		return "unknown"
	}
	return kindNames[k]
}

// KindByName resolves a tracker name.
func KindByName(name string) (Kind, bool) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), true
		}
	}
	return 0, false
}

// Kinds returns all tracker kinds.
func Kinds() []Kind { return []Kind{MedianFlow, KCF, CSRT, OptFlow} }

// DownsampleRatios are the ds knob values exposed by the MBEK.
var DownsampleRatios = []int{1, 2, 4}

// Params is a tracker algorithm's calibrated envelope.
type Params struct {
	Name string
	// Cost (TX2 ms at ds = 1): CostBase per frame plus CostPerObj per
	// tracked object.
	CostBase   float64
	CostPerObj float64
	// Drift is the per-frame center drift (fraction of object size) at
	// the reference speed; ScaleDrift is the per-frame log-scale drift.
	Drift      float64
	ScaleDrift float64
	// FailRate is the per-frame probability of losing the target at the
	// reference speed.
	FailRate float64
}

var params = [NumKinds]Params{
	MedianFlow: {Name: "medianflow", CostBase: 0.8, CostPerObj: 1.8,
		Drift: 0.050, ScaleDrift: 0.020, FailRate: 0.022},
	KCF: {Name: "kcf", CostBase: 1.0, CostPerObj: 2.8,
		Drift: 0.030, ScaleDrift: 0.014, FailRate: 0.012},
	CSRT: {Name: "csrt", CostBase: 1.5, CostPerObj: 11.0,
		Drift: 0.014, ScaleDrift: 0.008, FailRate: 0.005},
	OptFlow: {Name: "optflow", CostBase: 2.5, CostPerObj: 4.5,
		Drift: 0.022, ScaleDrift: 0.011, FailRate: 0.009},
}

// ParamsOf returns the calibrated parameters of a tracker kind.
func ParamsOf(k Kind) Params {
	if k < 0 || int(k) >= NumKinds {
		panic("track: invalid tracker kind")
	}
	return params[k]
}

// CostMS returns the base TX2 cost of one tracking step over nObj objects
// at downsampling ratio ds. Downsampling shrinks the input patch, cutting
// cost sublinearly.
func CostMS(k Kind, ds, nObj int) float64 {
	p := ParamsOf(k)
	if ds < 1 {
		ds = 1
	}
	dsf := math.Pow(float64(ds), 0.9)
	return p.CostBase + p.CostPerObj*float64(nObj)/dsf
}

// dsDriftFactor is the drift multiplier of downsampling.
func dsDriftFactor(ds int) float64 {
	if ds < 1 {
		ds = 1
	}
	return 1 + 0.40*float64(ds-1)
}

// speedFactor converts object speed (px/frame) into a drift/failure
// multiplier around a reference speed of ~6 px/frame.
func speedFactor(speed float64) float64 {
	return 0.35 + speed/6.0
}

// tracked is one propagated box.
type tracked struct {
	det      metric.Detection
	gtID     int // associated ground-truth object; -1 for a ghost (FP)
	offX     float64
	offY     float64
	logScale float64
	lost     bool
	lastVX   float64
	lastVY   float64
}

// Tracker propagates a set of boxes across a GoF. It is deterministic
// given its seed.
type Tracker struct {
	kind Kind
	ds   int
	rng  *rand.Rand
	objs []tracked
}

// New creates a tracker of the given kind and downsampling ratio. The
// seed fixes the stochastic drift/failure realization.
func New(kind Kind, ds int, seed int64) *Tracker {
	if ds < 1 {
		ds = 1
	}
	return &Tracker{kind: kind, ds: ds, rng: rand.New(rand.NewSource(seed))}
}

// Kind returns the tracker algorithm.
func (t *Tracker) Kind() Kind { return t.kind }

// NumTracked returns the number of currently propagated boxes.
func (t *Tracker) NumTracked() int { return len(t.objs) }

// Init (re)initializes the tracker from detector output on frame f,
// associating each detection with the best-overlapping ground-truth
// object (one-to-one, score order). Unassociated detections become
// ghosts that drift without a target.
func (t *Tracker) Init(f vid.Frame, dets []metric.Detection) {
	t.objs = t.objs[:0]
	taken := map[int]bool{}
	// Associate in descending score order so confident detections claim
	// their objects first.
	order := make([]int, len(dets))
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if dets[order[j]].Score > dets[order[i]].Score {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for _, di := range order {
		d := dets[di]
		bestIoU, bestID := 0.0, -1
		var bestObj vid.Object
		for _, o := range f.Objects {
			if taken[o.ID] {
				continue
			}
			if iou := d.Box.IoU(o.Box); iou > bestIoU {
				bestIoU, bestID, bestObj = iou, o.ID, o
			}
		}
		tr := tracked{det: d, gtID: -1}
		if bestID >= 0 && bestIoU >= 0.3 {
			taken[bestID] = true
			tr.gtID = bestID
			// The tracker's error relative to the target starts at the
			// detector's localization error.
			tr.offX = d.Box.CenterX() - bestObj.Box.CenterX()
			tr.offY = d.Box.CenterY() - bestObj.Box.CenterY()
			if bestObj.Box.W > 0 {
				tr.logScale = math.Log(math.Max(d.Box.W/bestObj.Box.W, 1e-3))
			}
			tr.lastVX, tr.lastVY = bestObj.VX, bestObj.VY
		}
		t.objs = append(t.objs, tr)
	}
}

// Step propagates all boxes to frame f of video v and returns the
// tracker's outputs for that frame.
func (t *Tracker) Step(v *vid.Video, f vid.Frame) []metric.Detection {
	p := ParamsOf(t.kind)
	clutter := v.Profile.Clutter
	dsf := dsDriftFactor(t.ds)
	byID := make(map[int]vid.Object, len(f.Objects))
	for _, o := range f.Objects {
		byID[o.ID] = o
	}

	out := make([]metric.Detection, 0, len(t.objs))
	for i := range t.objs {
		tr := &t.objs[i]
		// Confidence decays as the track ages.
		tr.det.Score *= 0.985

		o, present := byID[tr.gtID]
		switch {
		case tr.gtID < 0 || tr.lost || !present:
			// Ghost, lost, or occluded target: coast on the last velocity
			// with a small random walk.
			size := math.Sqrt(tr.det.Box.Area())
			tr.det.Box = tr.det.Box.Translate(
				tr.lastVX+t.rng.NormFloat64()*0.02*size,
				tr.lastVY+t.rng.NormFloat64()*0.02*size,
			).Clamp(float64(v.Width), float64(v.Height))
			tr.det.Score *= 0.96
		default:
			sf := speedFactor(o.Speed()) * dsf * (1 + 0.5*clutter)
			if !tr.lost && t.rng.Float64() < p.FailRate*sf {
				tr.lost = true
				tr.det.Score *= 0.9
				out = append(out, tr.det)
				continue
			}
			size := math.Sqrt(o.Box.Area())
			tr.offX += t.rng.NormFloat64() * p.Drift * size * sf
			tr.offY += t.rng.NormFloat64() * p.Drift * size * sf
			tr.logScale += t.rng.NormFloat64() * p.ScaleDrift * sf
			scale := math.Exp(tr.logScale)
			w, h := o.Box.W*scale, o.Box.H*scale
			cx := o.Box.CenterX() + tr.offX
			cy := o.Box.CenterY() + tr.offY
			tr.det.Box = (geomRect(cx-w/2, cy-h/2, w, h)).
				Clamp(float64(v.Width), float64(v.Height))
			tr.lastVX, tr.lastVY = o.VX, o.VY
		}
		if !tr.det.Box.Empty() && tr.det.Score > 0.01 {
			out = append(out, tr.det)
		}
	}
	return out
}

// geomRect is a local constructor avoiding an import rename.
func geomRect(x, y, w, h float64) geom.Rect { return geom.Rect{X: x, Y: y, W: w, H: h} }
