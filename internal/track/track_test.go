package track

import (
	"math"
	"testing"

	"litereconfig/internal/detect"
	"litereconfig/internal/metric"
	"litereconfig/internal/vid"
)

func TestKindNames(t *testing.T) {
	if NumKinds != 4 {
		t.Fatalf("NumKinds = %d", NumKinds)
	}
	for _, k := range Kinds() {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Fatalf("round trip failed for %v", k)
		}
	}
	if _, ok := KindByName("nope"); ok {
		t.Fatal("bogus name resolved")
	}
	if Kind(-1).String() != "unknown" {
		t.Fatal("invalid kind string")
	}
}

func TestParamsOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ParamsOf(Kind(99))
}

func TestCostOrdering(t *testing.T) {
	// Classic ordering: MedianFlow < KCF < OptFlow < CSRT per object.
	n := 3
	mf := CostMS(MedianFlow, 1, n)
	kcf := CostMS(KCF, 1, n)
	of := CostMS(OptFlow, 1, n)
	csrt := CostMS(CSRT, 1, n)
	if !(mf < kcf && kcf < of && of < csrt) {
		t.Fatalf("cost ordering broken: %v %v %v %v", mf, kcf, of, csrt)
	}
	// Cost grows with object count and shrinks with downsampling.
	if CostMS(KCF, 1, 1) >= CostMS(KCF, 1, 5) {
		t.Fatal("cost should grow with objects")
	}
	if CostMS(KCF, 4, 3) >= CostMS(KCF, 1, 3) {
		t.Fatal("downsampling should cut cost")
	}
	if CostMS(KCF, 0, 3) != CostMS(KCF, 1, 3) {
		t.Fatal("ds < 1 should clamp to 1")
	}
}

func TestAccuracyOrdering(t *testing.T) {
	// CSRT must drift less than MedianFlow.
	pMF, pCSRT := ParamsOf(MedianFlow), ParamsOf(CSRT)
	if pCSRT.Drift >= pMF.Drift || pCSRT.FailRate >= pMF.FailRate {
		t.Fatal("CSRT should be strictly more stable than MedianFlow")
	}
}

// runGoF detects on the first frame of a window and tracks the rest,
// returning the per-frame IoU-weighted quality via mAP.
func runGoF(t *testing.T, v *vid.Video, kind Kind, ds, start, gof int, seed int64) float64 {
	t.Helper()
	cfg := detect.Config{Shape: 576, NProp: 100}
	first := v.Frames[start]
	dets := detect.FasterRCNN.Detect(v, first, cfg)
	tr := New(kind, ds, seed)
	tr.Init(first, dets)
	frames := []metric.FrameResult{{Truth: first.Objects, Dets: dets}}
	for i := start + 1; i < start+gof && i < len(v.Frames); i++ {
		f := v.Frames[i]
		frames = append(frames, metric.FrameResult{Truth: f.Objects, Dets: tr.Step(v, f)})
	}
	return metric.MeanAP(frames, metric.DefaultIoU)
}

func slowVideo() *vid.Video {
	return vid.GenerateWithProfile("slow", 31, vid.GenConfig{Frames: 120},
		vid.ContentProfile{ObjectCount: 2, SizeFrac: 0.35, Speed: 1, Clutter: 0.2, Archetype: "t"})
}

func fastVideo() *vid.Video {
	return vid.GenerateWithProfile("fast", 32, vid.GenConfig{Frames: 120},
		vid.ContentProfile{ObjectCount: 2, SizeFrac: 0.2, Speed: 16, Clutter: 0.4, Archetype: "t"})
}

func avgOverStarts(t *testing.T, v *vid.Video, kind Kind, ds, gof int) float64 {
	t.Helper()
	var sum float64
	n := 0
	for start := 0; start+gof <= len(v.Frames); start += gof {
		sum += runGoF(t, v, kind, ds, start, gof, int64(start)+77)
		n++
	}
	return sum / float64(n)
}

func TestTrackingHoldsOnSlowContent(t *testing.T) {
	v := slowVideo()
	ap := avgOverStarts(t, v, KCF, 1, 8)
	if ap < 0.5 {
		t.Fatalf("KCF on slow content over GoF=8: mAP %.3f, want >= 0.5", ap)
	}
}

func TestFastContentDegradesTracking(t *testing.T) {
	slow := avgOverStarts(t, slowVideo(), KCF, 1, 8)
	fast := avgOverStarts(t, fastVideo(), KCF, 1, 8)
	if fast >= slow {
		t.Fatalf("fast content should hurt tracking: slow=%.3f fast=%.3f", slow, fast)
	}
}

func TestLongerGoFDegradesAccuracy(t *testing.T) {
	v := fastVideo()
	short := avgOverStarts(t, v, KCF, 1, 4)
	long := avgOverStarts(t, v, KCF, 1, 20)
	if long >= short {
		t.Fatalf("GoF=20 should trail GoF=4 on fast content: short=%.3f long=%.3f", short, long)
	}
}

func TestCSRTBeatsMedianFlowOnFastContent(t *testing.T) {
	v := fastVideo()
	mf := avgOverStarts(t, v, MedianFlow, 1, 8)
	csrt := avgOverStarts(t, v, CSRT, 1, 8)
	if csrt <= mf {
		t.Fatalf("CSRT (%.3f) should beat MedianFlow (%.3f) on fast content", csrt, mf)
	}
}

func TestDownsamplingHurtsAccuracy(t *testing.T) {
	v := fastVideo()
	ds1 := avgOverStarts(t, v, KCF, 1, 8)
	ds4 := avgOverStarts(t, v, KCF, 4, 8)
	if ds4 >= ds1 {
		t.Fatalf("ds=4 (%.3f) should trail ds=1 (%.3f)", ds4, ds1)
	}
}

func TestTrackerDeterministic(t *testing.T) {
	v := slowVideo()
	run := func() []metric.Detection {
		dets := detect.FasterRCNN.Detect(v, v.Frames[0], detect.Config{Shape: 448, NProp: 20})
		tr := New(KCF, 1, 5)
		tr.Init(v.Frames[0], dets)
		var last []metric.Detection
		for i := 1; i < 8; i++ {
			last = tr.Step(v, v.Frames[i])
		}
		return last
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic output count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic tracking")
		}
	}
}

func TestInitAssociation(t *testing.T) {
	v := slowVideo()
	f := v.Frames[0]
	if len(f.Objects) == 0 {
		t.Skip("empty first frame")
	}
	// Perfect detections: every tracked box should be associated.
	var dets []metric.Detection
	for _, o := range f.Objects {
		dets = append(dets, metric.Detection{Class: o.Class, Box: o.Box, Score: 0.9})
	}
	tr := New(KCF, 1, 1)
	tr.Init(f, dets)
	if tr.NumTracked() != len(dets) {
		t.Fatalf("tracked %d, want %d", tr.NumTracked(), len(dets))
	}
	for _, o := range tr.objs {
		if o.gtID < 0 {
			t.Fatal("perfect detection left unassociated")
		}
	}
	// A far-away false positive becomes a ghost.
	tr.Init(f, []metric.Detection{{Class: vid.Car,
		Box: f.Objects[0].Box.Translate(2000, 2000), Score: 0.5}})
	if tr.objs[0].gtID != -1 {
		t.Fatal("distant detection should be a ghost")
	}
}

func TestScoresDecayOverGoF(t *testing.T) {
	v := slowVideo()
	f := v.Frames[0]
	if len(f.Objects) == 0 {
		t.Skip("empty first frame")
	}
	dets := []metric.Detection{{Class: f.Objects[0].Class, Box: f.Objects[0].Box, Score: 0.9}}
	tr := New(CSRT, 1, 3)
	tr.Init(f, dets)
	prev := 0.9
	for i := 1; i < 10; i++ {
		out := tr.Step(v, v.Frames[i])
		if len(out) == 0 {
			break
		}
		if out[0].Score >= prev {
			t.Fatalf("score did not decay at step %d: %v >= %v", i, out[0].Score, prev)
		}
		prev = out[0].Score
	}
}

func TestStepKeepsBoxesInFrame(t *testing.T) {
	v := fastVideo()
	dets := detect.FasterRCNN.Detect(v, v.Frames[0], detect.Config{Shape: 576, NProp: 100})
	tr := New(MedianFlow, 4, 9)
	tr.Init(v.Frames[0], dets)
	for i := 1; i < 30; i++ {
		for _, d := range tr.Step(v, v.Frames[i]) {
			if d.Box.X < -1e-9 || d.Box.Y < -1e-9 ||
				d.Box.MaxX() > float64(v.Width)+1e-9 ||
				d.Box.MaxY() > float64(v.Height)+1e-9 {
				t.Fatalf("tracked box escaped frame: %v", d.Box)
			}
		}
	}
}

func TestDriftGrowsOverTime(t *testing.T) {
	// Mean IoU against ground truth must be non-increasing in tracked
	// horizon, averaged over many seeds.
	v := fastVideo()
	horizonIoU := func(h int) float64 {
		var sum float64
		n := 0
		for seed := int64(0); seed < 30; seed++ {
			f := v.Frames[0]
			if len(f.Objects) == 0 {
				continue
			}
			o := f.Objects[0]
			tr := New(KCF, 1, seed)
			tr.Init(f, []metric.Detection{{Class: o.Class, Box: o.Box, Score: 0.9}})
			var out []metric.Detection
			for i := 1; i <= h; i++ {
				out = tr.Step(v, v.Frames[i])
			}
			if len(out) == 0 {
				continue
			}
			// Find the same GT object at the horizon frame.
			for _, g := range v.Frames[h].Objects {
				if g.ID == o.ID {
					sum += out[0].Box.IoU(g.Box)
					n++
				}
			}
		}
		if n == 0 {
			t.Skip("object did not survive horizon")
		}
		return sum / float64(n)
	}
	i2, i15 := horizonIoU(2), horizonIoU(15)
	if i15 >= i2 {
		t.Fatalf("IoU did not decay with horizon: h2=%.3f h15=%.3f", i2, i15)
	}
}

func TestSpeedFactorMonotone(t *testing.T) {
	if speedFactor(0) >= speedFactor(10) || speedFactor(10) >= speedFactor(20) {
		t.Fatal("speedFactor must be increasing")
	}
	if dsDriftFactor(1) != 1 || dsDriftFactor(4) <= dsDriftFactor(2) {
		t.Fatal("dsDriftFactor wrong")
	}
	if dsDriftFactor(0) != 1 {
		t.Fatal("ds=0 should clamp")
	}
}

func TestEmptyInit(t *testing.T) {
	tr := New(KCF, 1, 1)
	v := slowVideo()
	tr.Init(v.Frames[0], nil)
	if tr.NumTracked() != 0 {
		t.Fatal("empty init should track nothing")
	}
	if out := tr.Step(v, v.Frames[1]); len(out) != 0 {
		t.Fatal("step with no tracks should return nothing")
	}
	if tr.Kind() != KCF {
		t.Fatal("kind accessor wrong")
	}
	if math.IsNaN(CostMS(KCF, 1, 0)) {
		t.Fatal("cost with zero objects")
	}
}
