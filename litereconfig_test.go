package litereconfig

import (
	"bytes"
	"sync"
	"testing"
)

// One compact model set shared by the facade tests.
var (
	apiOnce   sync.Once
	apiModels *Models
	apiErr    error
)

func apiFixture(t *testing.T) *Models {
	t.Helper()
	apiOnce.Do(func() {
		apiModels, apiErr = TrainModels(TrainOptions{
			Videos: 12, FramesPerVideo: 120, BranchSpace: "small", Seed: 11,
		})
	})
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	return apiModels
}

func TestTrainModelsValidation(t *testing.T) {
	if _, err := TrainModels(TrainOptions{BranchSpace: "bogus", Videos: 1,
		FramesPerVideo: 40}); err == nil {
		t.Fatal("bogus branch space should error")
	}
}

func TestEndToEnd(t *testing.T) {
	models := apiFixture(t)
	if models.Branches() == 0 {
		t.Fatal("no branches")
	}
	sys, err := NewSystem(models, Config{SLO: 33.3})
	if err != nil {
		t.Fatal(err)
	}
	video := GenerateVideo(4242, 120)
	if video.Frames() != 120 {
		t.Fatalf("frames = %d", video.Frames())
	}
	rep, err := sys.ProcessVideo(video)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MAP <= 0 || rep.MAP > 1 {
		t.Fatalf("mAP = %v", rep.MAP)
	}
	if !rep.MeetsSLO {
		t.Fatalf("default system violates its SLO: p95=%.1f", rep.P95MS)
	}
	if rep.MeanMS <= 0 || rep.P95MS < rep.MeanMS {
		t.Fatalf("latency stats inconsistent: mean=%v p95=%v", rep.MeanMS, rep.P95MS)
	}
	t.Logf("end to end: mAP=%.3f p95=%.1fms features=%v", rep.MAP, rep.P95MS, rep.FeatureUse)
}

func TestNewSystemValidation(t *testing.T) {
	models := apiFixture(t)
	if _, err := NewSystem(nil, Config{SLO: 33}); err == nil {
		t.Fatal("nil models should error")
	}
	if _, err := NewSystem(models, Config{SLO: 0}); err == nil {
		t.Fatal("zero SLO should error")
	}
	if _, err := NewSystem(models, Config{SLO: 33, Device: "psp"}); err == nil {
		t.Fatal("unknown device should error")
	}
	if _, err := NewSystem(models, Config{SLO: 33, Policy: "wat"}); err == nil {
		t.Fatal("unknown policy should error")
	}
	if _, err := NewSystem(models, Config{SLO: 20, Device: Xavier,
		Policy: MinCost}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestProcessVideoValidation(t *testing.T) {
	models := apiFixture(t)
	sys, err := NewSystem(models, Config{SLO: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ProcessVideo(); err == nil {
		t.Fatal("no videos should error")
	}
}

func TestPoliciesDiffer(t *testing.T) {
	models := apiFixture(t)
	video := GenerateVideo(777, 120)
	run := func(p Policy) *Report {
		sys, err := NewSystem(models, Config{SLO: 100, Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.ProcessVideo(video)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	mc := run(MinCost)
	if len(mc.FeatureUse) != 0 {
		t.Fatalf("MinCost used content features: %v", mc.FeatureUse)
	}
	rn := run(MaxContentResNet)
	if rn.FeatureUse["resnet50"] == 0 {
		t.Fatalf("ResNet variant did not use its feature: %v", rn.FeatureUse)
	}
}

func TestContentionSlowsSystem(t *testing.T) {
	models := apiFixture(t)
	video := GenerateVideo(888, 120)
	run := func(g float64, policy Policy) *Report {
		sys, err := NewSystem(models, Config{SLO: 50, Policy: policy, GPUContention: g})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.ProcessVideo(video)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	// The full policy adapts: it must keep the SLO even at 50% contention.
	if rep := run(0.5, Full); !rep.MeetsSLO {
		t.Fatalf("full policy violates SLO under contention: p95=%.1f", rep.P95MS)
	}
}

func TestModelsSaveLoadRoundTrip(t *testing.T) {
	models := apiFixture(t)
	var buf bytes.Buffer
	if err := models.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Branches() != models.Branches() {
		t.Fatal("branch count changed in round trip")
	}
	sys, err := NewSystem(loaded, Config{SLO: 50})
	if err != nil {
		t.Fatal(err)
	}
	video := GenerateVideo(999, 80)
	rep1, err := sys.ProcessVideo(video)
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := NewSystem(models, Config{SLO: 50})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := sys2.ProcessVideo(video)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.MAP != rep2.MAP || rep1.P95MS != rep2.P95MS {
		t.Fatalf("round-tripped models behave differently: %.4f/%.4f vs %.4f/%.4f",
			rep1.MAP, rep1.P95MS, rep2.MAP, rep2.P95MS)
	}
}
