package litereconfig_test

import (
	"fmt"

	litereconfig "litereconfig"
)

// The offline phase trains the scheduler's predictors once; the runtime
// system then streams videos under a latency objective.
func Example() {
	models, err := litereconfig.TrainModels(litereconfig.TrainOptions{
		Videos: 8, FramesPerVideo: 120, BranchSpace: "small", Seed: 11,
	})
	if err != nil {
		panic(err)
	}
	sys, err := litereconfig.NewSystem(models, litereconfig.Config{
		SLO:    33.3,
		Device: litereconfig.TX2,
	})
	if err != nil {
		panic(err)
	}
	video := litereconfig.GenerateVideo(42, 240)
	report, err := sys.ProcessVideo(video)
	if err != nil {
		panic(err)
	}
	fmt.Printf("frames: %d\n", video.Frames())
	fmt.Printf("meets 33.3 ms SLO: %v\n", report.MeetsSLO)
	// Output:
	// frames: 240
	// meets 33.3 ms SLO: true
}

func ExampleGenerateVideo() {
	v := litereconfig.GenerateVideo(7, 100)
	fmt.Println(v.Frames())
	// Output: 100
}
